//! The exact count-based simulation engine.
//!
//! Agents in the population-protocol model are anonymous and the interaction
//! graph is complete, so the dynamics depend on the configuration only
//! through its *multiset of states*. This engine exploits that: it interns
//! states, keeps one integer count per state, and samples each ordered
//! interaction directly from the counts:
//!
//! * initiator state `s` with probability `c_s / n`,
//! * responder state `t` with probability `c_t / (n−1)` after virtually
//!   removing the initiator from the urn.
//!
//! This is *exactly* the uniformly random scheduler Γ — no approximation —
//! while using `O(#states)` memory instead of `O(n)` and, as a by-product,
//! counting how many distinct states an execution ever visits (the "number
//! of states" column of the paper's Table 1).
//!
//! # The four execution tiers
//!
//! Every batched driver ([`run`](CountSimulation::run),
//! [`run_batched`](CountSimulation::run_batched),
//! [`run_until_single_leader`](CountSimulation::run_until_single_leader))
//! dispatches through the [tier controller](crate::tier): periodic reviews
//! pick the cheapest execution strategy for the *current* configuration and
//! re-evaluate as it evolves.
//!
//! 1. **Reference** — the uncached per-step fallback: every interaction
//!    hashes, clones, and calls [`Protocol::transition`]. Only used when the
//!    compiled cache is disabled; it is the bit-exact oracle the fast paths
//!    are tested against.
//! 2. **Compiled** — the hash-free per-step path: a
//!    [compiled pair-transition cache](crate::compiled) makes each
//!    steady-state interaction one table load plus
//!    [fused pair sampling](pp_rand::SumTreeSampler::sample_pair_distinct)
//!    (two tree descents, zero tree writes), with convergence bookkeeping
//!    riding on cached leader deltas. Same RNG stream and bit-identical
//!    executions whether the cache is on or off.
//! 3. **Jump** — the null-skipping scheduler (see [`crate::jump`]): when
//!    known-null pairs carry at least `1 − 1/engage_factor` of the scheduler
//!    weight, each run of consecutive nulls telescopes into one geometric
//!    draw plus one exact draw from the non-null pair distribution.
//! 4. **Batch** — collision-free hypergeometric rounds (see
//!    [`crate::batch`]): `Θ(√n)`-length runs of pairwise-disjoint
//!    interactions are drawn as multivariate hypergeometric state multisets
//!    and applied in bulk, with the terminating collision executed exactly —
//!    sub-interaction amortized cost for *any* null density whenever the
//!    live support is small against `√n`.
//!
//! Tiers 3 and 4 change no distribution — executions are equal in law,
//! including the exact step counts at which the configuration changes — but
//! they consume the RNG stream differently, so only tiers 1 and 2 are
//! bit-identical to each other. The 4-tier chi-square equivalence suite
//! (`tests/batch_equivalence.rs`) pins the law; heuristics, thresholds, and
//! the cache cap are tunable through [`EngineConfig`].
//!
//! # State-id compaction
//!
//! State-unbounded protocols (e.g. an unbounded lottery) intern states
//! forever, but their *live* support is usually tiny. Tier reviews therefore
//! **compact** the id space when enough dead ids have accumulated: live
//! states are renumbered 0.. in descending-count order, the sampler tree
//! shrinks to the live support, the pair cache remaps (dropping entries that
//! touch dead ids), and dead states remain interned only in the seen-state
//! map so [`distinct_states_seen`](CountSimulation::distinct_states_seen)
//! stays exact even when a dead state is later revisited. Compaction is what
//! keeps the fast tiers engaged past the cache's addressable-id cap.

use crate::batch::BatchStats;
use crate::compiled::{self, PairCache};
use crate::obs::{EngineEvent, EngineMetrics, EngineObserver};
use crate::round::{
    self, ContingencyLaw, LawMode, MultiRoundLaw, RoundLaw, SegmentDraw, SequenceExpansionLaw,
};
use crate::snapshot::{self, SnapshotError, SnapshotReader, SnapshotState, SnapshotWriter};
use crate::tier::{self, EngineConfig, EngineTier, JumpStats, TierController, TierUsage};
use crate::{EngineError, LeaderElection, Protocol, Role, RunOutcome, CONVERGENCE_BATCH};
use pp_rand::{Geometric, Rng64, RngSnapshot, SumTreeSampler, Xoshiro256PlusPlus};
use std::collections::HashMap;
use std::time::Instant;

/// Sentinel id in the seen-state map for states that were interned at some
/// point but currently hold no agents and no live slot (their old slot was
/// reclaimed by compaction). Re-interning such a state allocates a fresh
/// slot without recounting it as newly distinct.
const DEAD_ID: u32 = u32::MAX;

/// Exact count-based engine; see the module-level documentation above.
///
/// # Example
///
/// ```
/// use pp_engine::{CountSimulation, Protocol, Role, LeaderElection};
/// use pp_rand::Xoshiro256PlusPlus;
///
/// struct Frat;
/// impl Protocol for Frat {
///     type State = bool;
///     type Output = Role;
///     fn initial_state(&self) -> bool { true }
///     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
///         if *a && *b { (true, false) } else { (*a, *b) }
///     }
///     fn output(&self, s: &bool) -> Role {
///         if *s { Role::Leader } else { Role::Follower }
///     }
/// }
/// impl LeaderElection for Frat { fn monotone_leaders(&self) -> bool { true } }
///
/// let rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let mut sim = CountSimulation::new(Frat, 1_000_000, rng).unwrap();
/// sim.run(100);
/// assert_eq!(sim.population(), 1_000_000);
/// assert!(sim.distinct_states_seen() <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountSimulation<P: Protocol, R = Xoshiro256PlusPlus> {
    protocol: P,
    rng: R,
    /// Every state the execution has ever visited, mapped to its live slot
    /// id — or [`DEAD_ID`] when its slot was reclaimed by compaction.
    ids: HashMap<P::State, u32>,
    /// Live states, indexed by slot id (compaction renumbers).
    states: Vec<P::State>,
    outputs: Vec<P::Output>,
    /// 1 for states whose output is the primed leader output, else 0.
    /// All-zero until [`prime_role_tracking`](Self::prime_role_tracking).
    leader_flags: Vec<i8>,
    /// The output value counted as "leader"; `None` until role tracking is
    /// primed (which also backfills `leader_flags` and cached deltas).
    leader_output: Option<P::Output>,
    /// Number of states with a positive count (`support_size` in O(1)).
    support: usize,
    sampler: SumTreeSampler,
    pairs: PairCache,
    tiers: TierController,
    n: u64,
    steps: u64,
    /// Attached observability hook ([`set_observer`](Self::set_observer));
    /// `None` (the default) costs one predictable branch at episode/review
    /// boundaries and nothing per interaction. Observation consumes no RNG,
    /// so attached and detached twins stay bit-identical.
    obs: Option<Box<EngineObserver>>,
    /// The step count [`resume`](Self::resume) restored, reported as a
    /// [`EngineEvent::Resumed`] to the next attached observer. Transient:
    /// never serialized.
    resumed_at: Option<u64>,
}

impl<P: Protocol, R: Rng64> CountSimulation<P, R> {
    /// Creates a count simulation of `n` agents in the initial state, with
    /// the default [`EngineConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn new(protocol: P, n: usize, rng: R) -> Result<Self, EngineError> {
        Self::with_config(protocol, n, rng, EngineConfig::default())
    }

    /// Creates a count simulation with explicit tier-heuristic tuning.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn with_config(
        protocol: P,
        n: usize,
        rng: R,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        let mut sim = Self::empty(protocol, rng, config);
        let init = sim.protocol.initial_state();
        let id = sim.intern(init) as usize;
        sim.add_agents(id, n as u64);
        Ok(sim)
    }

    /// Creates a count simulation from explicit state counts.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when counts sum to < 2.
    pub fn from_counts(
        protocol: P,
        counts: impl IntoIterator<Item = (P::State, u64)>,
        rng: R,
    ) -> Result<Self, EngineError> {
        Self::from_counts_with_config(protocol, counts, rng, EngineConfig::default())
    }

    /// Creates a count simulation from explicit state counts with explicit
    /// tier-heuristic tuning.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when counts sum to < 2.
    pub fn from_counts_with_config(
        protocol: P,
        counts: impl IntoIterator<Item = (P::State, u64)>,
        rng: R,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let mut sim = Self::empty(protocol, rng, config);
        for (state, count) in counts {
            if count == 0 {
                continue;
            }
            let id = sim.intern(state) as usize;
            sim.add_agents(id, count);
        }
        if sim.n < 2 {
            return Err(EngineError::PopulationTooSmall { n: sim.n as usize });
        }
        Ok(sim)
    }

    fn empty(protocol: P, rng: R, config: EngineConfig) -> Self {
        let tiers = TierController::new(config);
        Self {
            protocol,
            rng,
            ids: HashMap::new(),
            states: Vec::new(),
            outputs: Vec::new(),
            leader_flags: Vec::new(),
            leader_output: None,
            support: 0,
            sampler: SumTreeSampler::new(0),
            pairs: PairCache::new(tiers.config.max_compiled_states),
            tiers,
            n: 0,
            steps: 0,
            obs: None,
            resumed_at: None,
        }
    }

    /// Adds `count` agents to slot `id` (construction-time only).
    fn add_agents(&mut self, id: usize, count: u64) {
        if count > 0 && self.sampler.weights()[id] == 0 {
            self.support += 1;
        }
        self.sampler.add(id, count as i64).expect("slot exists");
        self.n += count;
    }

    fn intern(&mut self, state: P::State) -> u32 {
        if let Some(&id) = self.ids.get(&state) {
            if id != DEAD_ID {
                return id;
            }
            // Seen before, slot reclaimed: allocate a fresh slot below
            // without recounting it in distinct_states_seen.
        }
        let id = self.states.len() as u32;
        debug_assert_ne!(id, DEAD_ID, "live id space exhausted");
        let output = self.protocol.output(&state);
        self.leader_flags
            .push(i8::from(self.leader_output.as_ref() == Some(&output)));
        self.outputs.push(output);
        self.states.push(state.clone());
        self.ids.insert(state, id);
        let slot = self.sampler.push_slot();
        debug_assert_eq!(slot, id as usize);
        self.pairs.ensure_states(self.states.len());
        id
    }

    /// The engine's tier configuration (fixed at construction).
    pub fn config(&self) -> &EngineConfig {
        &self.tiers.config
    }

    /// The execution tier the batched drivers are currently dispatching to.
    pub fn active_tier(&self) -> EngineTier {
        if self.tiers.jump.engaged {
            EngineTier::Jump
        } else if self.tiers.batch.engaged {
            EngineTier::Batch
        } else if self.pairs.is_active() {
            EngineTier::Compiled
        } else {
            EngineTier::Reference
        }
    }

    /// Enables or disables the compiled pair-transition cache.
    ///
    /// Both settings execute the **same** Markov chain with the **same** RNG
    /// stream — the cache consumes no randomness — so executions are
    /// bit-identical either way; disabling only removes the fast path (every
    /// step then hashes, clones, and calls [`Protocol::transition`]). Past
    /// [`EngineConfig::max_compiled_states`] interned states the cache
    /// *saturates* — higher ids fall back to per-encounter transitions until
    /// compaction frees ids — instead of deactivating.
    ///
    /// Disabling the cache also shuts down the jump scheduler and the batch
    /// tier's heuristic engagement (both read compiled knowledge), which is
    /// what keeps the uncached path bit-identical to the per-step reference
    /// execution.
    pub fn set_compiled_cache(&mut self, enabled: bool) {
        if enabled {
            self.pairs.reactivate();
            self.pairs.ensure_states(self.states.len());
            self.reseed_jump_ledger();
        } else {
            self.pairs.deactivate();
            self.tiers.jump.engaged = false;
            self.tiers.jump.ledger.clear();
            if !self.tiers.batch.forced {
                self.tiers.batch.engaged = false;
            }
        }
    }

    /// Enables or disables the **jump scheduler** (on by default): the
    /// null-skipping fast path that replaces each run of consecutive null
    /// interactions by one geometric jump plus one exact draw from the
    /// non-null pair distribution (see [`crate::jump`] for the argument and
    /// the data structure).
    ///
    /// The scheduler changes no distribution — executions are equal in law,
    /// including the exact step counts at which the configuration changes —
    /// but it consumes the RNG stream differently, so runs with the
    /// scheduler on and off are not bit-identical (the equivalence suite
    /// pins the law instead). It engages itself only when the compiled
    /// cache is active and probes show null pairs carrying at least
    /// `1 − 1/jump_engage_factor` of the scheduler weight (default `7/8`,
    /// see [`EngineConfig`]), and disengages under hysteresis, so protocols
    /// without a null-dominated regime never pay for it. Disabling it (or
    /// disabling the compiled cache, which it requires) restores the
    /// bit-exact per-step execution.
    ///
    /// Populations are capped at `2^32 − 1` agents: the scheduler's exact
    /// integer pair arithmetic needs `n(n−1)` to fit a `u64`, so beyond the
    /// cap probes simply never engage and execution stays per-step.
    ///
    /// Affects the batched drivers ([`run`](Self::run),
    /// [`run_batched`](Self::run_batched),
    /// [`run_until_single_leader`](Self::run_until_single_leader));
    /// single-[`step`](Self::step) calls always execute per-step.
    pub fn set_jump_scheduler(&mut self, enabled: bool) {
        let jump = &mut self.tiers.jump;
        jump.enabled = enabled;
        jump.engaged = false;
        jump.forced = false;
        jump.ledger.clear();
        if enabled {
            self.reseed_jump_ledger();
            self.tiers.review_at = self.steps;
        }
    }

    /// Enables or disables the **batch tier** (on by default): collision-free
    /// hypergeometric rounds that apply `Θ(√n)` interactions in bulk (see
    /// [`crate::batch`] for the construction and the exactness argument).
    ///
    /// Like the jump scheduler, the batch tier is distribution-exact but
    /// consumes the RNG stream differently, so it is equal in law — not
    /// bit-identical — to per-step execution. It engages itself only when
    /// the compiled cache is active, the population is at least
    /// [`EngineConfig::batch_min_population`], and the live support is small
    /// against the expected `Θ(√n)` round length (see
    /// [`EngineConfig::batch_support_divisor`]); the jump scheduler, when
    /// engaged, takes priority (a null-dominated configuration telescopes in
    /// `O(1)` per episode, which no round can beat).
    ///
    /// Populations share the jump scheduler's `2^32 − 1` cap: the collision
    /// round's exact integer category weights are bounded by `n(n−1)`,
    /// which must fit a `u64`, so beyond the cap the heuristics never
    /// engage and execution stays per-step.
    pub fn set_batch_tier(&mut self, enabled: bool) {
        let batch = &mut self.tiers.batch;
        batch.enabled = enabled;
        batch.engaged = false;
        batch.forced = false;
        if enabled {
            self.tiers.review_at = self.steps;
        }
    }

    /// Whether the jump scheduler is enabled (not necessarily engaged).
    pub fn jump_scheduler_enabled(&self) -> bool {
        self.tiers.jump.enabled
    }

    /// Whether the jump scheduler is currently engaged (probes found a
    /// null-dominated configuration and episodes are telescoping).
    pub fn jump_engaged(&self) -> bool {
        self.tiers.jump.engaged
    }

    /// Episode/skip counters of the jump scheduler.
    ///
    /// Superseded by [`metrics`](Self::metrics), which reports the same
    /// counters (field `jump`) alongside everything else the engine can
    /// observe; this thin shim remains so existing callers compile
    /// unchanged.
    pub fn jump_stats(&self) -> JumpStats {
        self.tiers.jump.stats
    }

    /// Whether the batch tier is enabled (not necessarily engaged).
    pub fn batch_tier_enabled(&self) -> bool {
        self.tiers.batch.enabled
    }

    /// Whether the batch tier is currently engaged (reviews found a
    /// small-support configuration and rounds are running in bulk).
    pub fn batch_engaged(&self) -> bool {
        self.tiers.batch.engaged
    }

    /// Round/interaction counters of the batch tier.
    ///
    /// Superseded by [`metrics`](Self::metrics), which reports the same
    /// counters (field `batch`) alongside everything else the engine can
    /// observe; this thin shim remains so existing callers compile
    /// unchanged.
    pub fn batch_stats(&self) -> BatchStats {
        self.tiers.batch.stats
    }

    /// Interactions executed per tier over the whole execution (maintained
    /// at dispatch boundaries whether or not an observer is attached, and
    /// persisted across [`snapshot`](Self::snapshot)/[`resume`]
    /// (Self::resume) since snapshot format v3).
    pub fn tier_usage(&self) -> TierUsage {
        self.tiers.usage
    }

    /// Attaches `observer` (replacing any previous one): from here on the
    /// engine records structured [`EngineEvent`]s, per-tier wall-time
    /// accounting, and — if the observer carries a sampler — the
    /// leader/support trajectory of
    /// [`run_until_single_leader`](Self::run_until_single_leader).
    ///
    /// Observation consumes **no randomness** and never changes dispatch:
    /// the observed simulation stays bit-identical (trajectory, step
    /// counts, snapshot bytes) to a detached twin. On a simulation built by
    /// [`resume`](Self::resume) this records an [`EngineEvent::Resumed`]
    /// first, so resumed event logs are self-describing.
    pub fn set_observer(&mut self, mut observer: EngineObserver) {
        if let Some(step) = self.resumed_at {
            observer.record(EngineEvent::Resumed { step });
        }
        self.obs = Some(Box::new(observer));
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&EngineObserver> {
        self.obs.as_deref()
    }

    /// Detaches and returns the observer, if any (the simulation reverts to
    /// the unobserved fast path).
    pub fn take_observer(&mut self) -> Option<EngineObserver> {
        self.obs.take().map(|b| *b)
    }

    /// One unified [`EngineMetrics`] snapshot: population, progress, tier
    /// usage, jump/batch counters, cache state, and — when an observer is
    /// attached — event counts and the wall-time timeline. Always
    /// available; supersedes the [`jump_stats`](Self::jump_stats)/
    /// [`batch_stats`](Self::batch_stats) split.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            population: self.n,
            steps: self.steps,
            parallel_time: self.parallel_time(),
            support: self.support as u64,
            distinct_states_seen: self.ids.len() as u64,
            active_tier: self.active_tier(),
            law: self.tiers.config.law_mode,
            tier_usage: self.tiers.usage,
            jump: self.tiers.jump.stats,
            batch: self.tiers.batch.stats,
            cache_active: self.pairs.is_active(),
            compiled_pairs: self.pairs.compiled_pairs() as u64,
            events_recorded: self.obs.as_deref().map_or(0, |o| o.events().len() as u64),
            events_dropped: self.obs.as_deref().map_or(0, EngineObserver::dropped),
            timeline: self.obs.as_deref().map(|o| *o.timeline()),
        }
    }

    /// Records a tier-transition event when the active tier moved away from
    /// `from` (no-op when detached or unchanged). Called at review/episode
    /// boundaries only.
    fn observe_transition(&mut self, from: EngineTier) {
        let to = self.active_tier();
        if to != from {
            let step = self.steps;
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.record(EngineEvent::TierTransition { step, from, to });
            }
        }
    }

    /// Accounts one dispatch's wall time to the observer's timeline.
    fn note_time(&mut self, tier: EngineTier, interactions: u64, t0: Instant) {
        let seconds = t0.elapsed().as_secs_f64();
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.timeline_mut().note(tier, interactions, seconds);
        }
    }

    /// Per-step chunk cap that lands samples exactly on the trajectory
    /// sampler's grid (`u64::MAX` — never binding — when detached or
    /// without a sampler). Only per-step windows are capped: subdividing
    /// them is RNG-invisible, whereas capping a jump/batch episode budget
    /// would change the draws and break bit-identity, so on those tiers
    /// samples land on the first episode boundary at or past each grid
    /// point instead.
    fn sample_window(&self) -> u64 {
        match self.obs.as_deref().and_then(EngineObserver::sampler) {
            Some(s) => s.next_due().saturating_sub(self.steps).max(1),
            None => u64::MAX,
        }
    }

    /// Records a trajectory sample if one is due at the current step (or
    /// unconditionally, deduplicated by step, when `finish` marks a driver
    /// exit). Cold: called at dispatch boundaries on the attached path only.
    #[cold]
    fn sample_trajectory(&mut self, leaders: i64, finish: bool) {
        let (step, support) = (self.steps, self.support as u64);
        if let Some(sampler) = self
            .obs
            .as_deref_mut()
            .and_then(EngineObserver::sampler_mut)
        {
            let due = step >= sampler.next_due();
            let last = sampler.trace().last_step();
            if due || (finish && last != Some(step)) {
                sampler.sample(step, leaders.max(0) as u64, support);
            }
        }
    }

    /// Test hook: engages the jump scheduler immediately and pins it on,
    /// bypassing the engage/exit thresholds. The scheduler still requires an
    /// active compiled cache.
    ///
    /// # Panics
    ///
    /// Panics if the compiled cache or the scheduler is disabled, or if the
    /// population exceeds the scheduler's `2^32 − 1` cap (see
    /// [`set_jump_scheduler`](Self::set_jump_scheduler)).
    #[doc(hidden)]
    pub fn force_jump_mode(&mut self) {
        assert!(
            self.tiers.jump.enabled && self.pairs.is_active(),
            "jump scheduler requires the compiled cache and the enabled toggle"
        );
        assert!(
            self.n <= u64::from(u32::MAX),
            "jump scheduler requires n(n-1) to fit u64"
        );
        // Unconditional rebuild: the ledger may be stale without being dirty
        // (per-step chunks since the last probe change counts but register
        // no new nulls), and episodes trust its weights exactly.
        self.tiers.jump.ledger.rebuild(self.sampler.weights());
        self.tiers.jump.engaged = true;
        self.tiers.jump.forced = true;
    }

    /// Test hook: engages the batch tier immediately and pins it on,
    /// bypassing the engage/exit heuristics (small populations included).
    /// Disables the jump scheduler, which would otherwise preempt batch
    /// dispatch in its null-dominated regime.
    ///
    /// # Panics
    ///
    /// Panics if the batch tier is disabled, or if the population exceeds
    /// the tier's `2^32 − 1` cap (see
    /// [`set_batch_tier`](Self::set_batch_tier)).
    #[doc(hidden)]
    pub fn force_batch_mode(&mut self) {
        assert!(
            self.tiers.batch.enabled,
            "batch tier requires the enabled toggle"
        );
        assert!(
            self.n <= tier::BATCH_MAX_POPULATION,
            "batch tier requires n(n-1) to fit u64"
        );
        let jump = &mut self.tiers.jump;
        jump.enabled = false;
        jump.engaged = false;
        jump.forced = false;
        jump.ledger.clear();
        self.tiers.batch.engaged = true;
        self.tiers.batch.forced = true;
    }

    /// Test hook: executes one per-step interaction (never jumping) and
    /// returns `(initiator_id, responder_id, changed)` — the drawn ordered
    /// pair of interned state ids plus the step's non-null flag. The
    /// deterministic replay suite uses this to reconstruct executions
    /// pair-for-pair.
    #[doc(hidden)]
    pub fn step_traced(&mut self) -> (usize, usize, bool) {
        let Ok((s, t)) = self.sampler.sample_pair_distinct(&mut self.rng) else {
            unreachable!("population has >= 2 agents");
        };
        self.steps += 1;
        if self.tiers.jump.engaged {
            // Same staleness hazard as in `step`.
            self.tiers.jump.ledger.mark_dirty();
        }
        let (changed, _) = self.apply_pair(s, t);
        (s, t, changed)
    }

    /// Test hook: per-state agent counts indexed by interned state id (the
    /// id order used by the jump scheduler's active-pair distribution).
    #[doc(hidden)]
    pub fn raw_counts(&self) -> &[u64] {
        self.sampler.weights()
    }

    /// Re-seeds the ledger's known-null set from already-compiled entries
    /// (after the scheduler or the cache is re-enabled mid-run, or after
    /// compaction remapped the id space).
    fn reseed_jump_ledger(&mut self) {
        if !self.tiers.jump.enabled || !self.pairs.is_active() {
            return;
        }
        let ledger = &mut self.tiers.jump.ledger;
        self.pairs.for_each_filled(|s, t, entry| {
            if compiled::unpack(entry).3 {
                ledger.register(s, t);
            }
        });
    }

    /// The compiled pair-transition cache (inspection only): activity,
    /// saturation, compiled-pair count, and table footprint.
    pub fn pair_cache(&self) -> &PairCache {
        &self.pairs
    }

    /// The population size `n`.
    pub fn population(&self) -> usize {
        self.n as usize
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The execution clock in parallel time (steps / n).
    pub fn parallel_time(&self) -> f64 {
        crate::parallel_time(self.steps, self.n as usize)
    }

    /// The protocol driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of **distinct states the execution has ever visited** —
    /// the empirical "states used" measure reported in Table 1 experiments.
    /// Exact across compactions: reclaimed states stay in the seen-state
    /// map, so revisiting one does not recount it.
    pub fn distinct_states_seen(&self) -> usize {
        self.ids.len()
    }

    /// Number of distinct states currently occupied by at least one agent.
    ///
    /// Maintained incrementally; this is `O(1)`.
    pub fn support_size(&self) -> usize {
        self.support
    }

    /// The number of agents currently in `state`.
    pub fn count_of(&self, state: &P::State) -> u64 {
        self.ids
            .get(state)
            .filter(|&&id| id != DEAD_ID)
            .map(|&id| self.sampler.weights()[id as usize])
            .unwrap_or(0)
    }

    /// A snapshot of all (state, count) pairs with positive count.
    pub fn state_counts(&self) -> HashMap<P::State, u64> {
        let mut out = HashMap::with_capacity(self.support);
        for (i, s) in self.states.iter().enumerate() {
            let w = self.sampler.weights()[i];
            if w > 0 {
                out.insert(s.clone(), w);
            }
        }
        out
    }

    /// Moves one agent from state slot `from` to state slot `to` (free
    /// no-op when `from == to`), folding occupancy changes into the
    /// incremental support count.
    ///
    /// Interned ids are always in range, so the error arm is unreachable;
    /// it is handled with a debug assertion plus silent no-op rather than a
    /// panic so the hot loop has no unwind edges (panic paths would force
    /// every cached field back to memory at each call).
    #[inline]
    fn move_agent(&mut self, from: usize, to: usize) {
        let Ok(effect) = self.sampler.transfer(from, to) else {
            debug_assert!(false, "interned slots {from}/{to} exist");
            return;
        };
        self.support = self.support + usize::from(effect.populated) - usize::from(effect.emptied);
    }

    /// Compiles the transition of the ordered pair `(s, t)`: runs the real
    /// [`Protocol::transition`], interns the successors, and (when the entry
    /// is representable — the cache can be saturated) stores the packed
    /// entry for every later encounter.
    ///
    /// This is the **only** place the protocol's transition is evaluated;
    /// when the cache is disabled or saturated past the pair's ids it simply
    /// runs once per encounter.
    ///
    /// Marked cold and never-inlined: with the cache active this is off the
    /// steady-state path, and keeping its hashing/interning machinery out
    /// of the hot loop lets the register allocator keep the RNG and tree
    /// state in registers across iterations.
    #[cold]
    #[inline(never)]
    fn compile_pair(&mut self, s: usize, t: usize) -> (usize, usize, i8, bool) {
        let (na, nb) = self.protocol.transition(&self.states[s], &self.states[t]);
        let a = self.intern(na) as usize;
        let b = self.intern(nb) as usize;
        let delta = self.leader_flags[a] + self.leader_flags[b]
            - self.leader_flags[s]
            - self.leader_flags[t];
        let null = a == s && b == t;
        // Feed the jump scheduler's known-null set as pairs compile (only
        // stored pairs: the ledger must stay a subset of the cache so
        // reseeding after compaction reconstructs it); weights stay stale
        // (dirty) until the next probe/episode.
        if self.pairs.store(s, t, a, b, delta, null) && null && self.tiers.jump.enabled {
            self.tiers.jump.ledger.register(s, t);
        }
        (a, b, delta, null)
    }

    /// The compiled effect of the ordered pair `(s, t)` — `(a, b,
    /// leader_delta, is_null)` — compiling on a cache miss. Does **not**
    /// move agents (the batch tier applies effects to its urns instead).
    #[inline]
    fn pair_effect(&mut self, s: usize, t: usize) -> (usize, usize, i8, bool) {
        let entry = self.pairs.get(s, t);
        if entry == compiled::EMPTY {
            self.compile_pair(s, t)
        } else {
            compiled::unpack(entry)
        }
    }

    /// Applies the interaction of the ordered pair `(s, t)` and returns
    /// `(changed, leader_delta)`.
    #[inline]
    fn apply_pair(&mut self, s: usize, t: usize) -> (bool, i8) {
        let (a, b, delta, null) = self.pair_effect(s, t);
        // Self-transfers fall out of the lockstep walk for free, so no
        // branching on which side changed.
        self.move_agent(s, a);
        self.move_agent(t, b);
        (!null, delta)
    }

    /// Executes one interaction; returns `true` if any state count changed.
    ///
    /// The population invariant (`n ≥ 2`, enforced at construction) makes
    /// the sampling error unreachable; see [`move_agent`](Self::move_agent)
    /// for why it is absorbed without a panic edge.
    #[inline]
    pub fn step(&mut self) -> bool {
        let Ok((s, t)) = self.sampler.sample_pair_distinct(&mut self.rng) else {
            debug_assert!(false, "population has >= 2 agents");
            return false;
        };
        self.steps += 1;
        // Per-step execution mutates counts behind the jump scheduler's
        // back; a stale ledger would make the next episode sample against
        // wrong weights, so force a rebuild at its next sync.
        if self.tiers.jump.engaged {
            self.tiers.jump.ledger.mark_dirty();
        }
        self.apply_pair(s, t).0
    }

    /// Executes up to `max` interactions entirely on the compiled fast
    /// path, then handles at most one cache miss, returning the number of
    /// interactions executed (0 only if `max == 0`).
    ///
    /// The inner loop holds every hot field through *split borrows* and
    /// calls nothing that takes `&mut self`: a `&mut self` callee (such as
    /// the interning [`compile_pair`](Self::compile_pair)) could touch any
    /// field, which would force the optimizer to spill the RNG words, step
    /// counter, and support count back to memory on every iteration.
    /// Keeping the miss path outside the loop is what lets them live in
    /// registers for the whole chunk. A miss still consumes its RNG draw,
    /// so the drawn pair is carried out of the loop and completed through
    /// the compile path before returning.
    fn run_chunk(&mut self, max: u64) -> u64 {
        let mut pending = None;
        let mut done = 0u64;
        {
            let Self {
                sampler,
                rng,
                pairs,
                support,
                ..
            } = self;
            let mut sup = *support;
            while done < max {
                let Ok((s, t)) = sampler.sample_pair_distinct(rng) else {
                    debug_assert!(false, "population has >= 2 agents");
                    break;
                };
                let entry = pairs.get(s, t);
                if entry == compiled::EMPTY {
                    pending = Some((s, t));
                    break;
                }
                let (a, b, _, _) = compiled::unpack(entry);
                let (Ok(e1), Ok(e2)) = (sampler.transfer(s, a), sampler.transfer(t, b)) else {
                    debug_assert!(false, "interned slots exist");
                    break;
                };
                sup = sup + usize::from(e1.populated) + usize::from(e2.populated)
                    - usize::from(e1.emptied)
                    - usize::from(e2.emptied);
                done += 1;
            }
            *support = sup;
        }
        self.steps += done;
        if let Some((s, t)) = pending {
            self.steps += 1;
            let (a, b, _, _) = self.compile_pair(s, t);
            self.move_agent(s, a);
            self.move_agent(t, b);
            done += 1;
        }
        done
    }

    /// The tier-review interval: short enough to catch small populations
    /// entering a null-dominated or small-support phase within a run, and
    /// scaled with the ledger size so the `O(m)` rebuild a jump probe
    /// performs stays a vanishing fraction of the work between reviews.
    fn review_interval(&self) -> u64 {
        self.n
            .min(CONVERGENCE_BATCH)
            .max(4 * self.tiers.jump.ledger.len() as u64)
    }

    /// Tier review, run at batch boundaries of the batched drivers:
    /// compacts the id space when enough dead ids accumulated, probes jump
    /// engagement against the current null weights, and applies the batch
    /// tier's engage/disengage heuristics.
    fn review_tiers(&mut self) {
        if self.steps < self.tiers.review_at {
            return;
        }
        self.tiers.review_at = self.steps + self.review_interval();
        if self.compaction_due() {
            self.compact_states();
        }
        self.probe_jump();
        self.review_batch();
    }

    /// Whether enough permanently-dead ids accumulated to warrant a
    /// compaction pass. The threshold scales with the live support so small
    /// protocols compact early (shrinking the sampler tree and pair table)
    /// while state-unbounded protocols compact in `O(support)`-sized
    /// amortized slices; pinned jump mode skips compaction because forced
    /// episodes trust ledger ids across calls.
    fn compaction_due(&self) -> bool {
        if !self.tiers.config.compaction || self.tiers.jump.forced {
            return false;
        }
        let dead = (self.states.len() - self.support) as u64;
        self.states.len() >= 64 && dead >= 48.max((self.support as u64).min(1024))
    }

    /// Renumbers live states 0.. in descending-count order, shrinking the
    /// sampler tree to the live support, remapping the pair cache, and
    /// demoting dead states to seen-only map entries. Consumes no
    /// randomness and depends only on the counts, so cached and uncached
    /// twins compact identically and stay bit-identical.
    fn compact_states(&mut self) {
        let live_before = self.states.len() as u64;
        let weights = self.sampler.weights();
        let mut live: Vec<u32> = (0..self.states.len() as u32)
            .filter(|&i| weights[i as usize] > 0)
            .collect();
        // Largest counts first: a saturated cache then covers the heavy
        // states, and the sampler tree's hot descents shorten.
        round::sort_descending(&mut live, |i| weights[i as usize]);
        let mut map = vec![DEAD_ID; self.states.len()];
        for (new, &old) in live.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        let mut new_states = Vec::with_capacity(live.len());
        let mut new_outputs = Vec::with_capacity(live.len());
        let mut new_flags = Vec::with_capacity(live.len());
        let mut new_weights = Vec::with_capacity(live.len());
        for &old in &live {
            let o = old as usize;
            new_states.push(self.states[o].clone());
            new_outputs.push(self.outputs[o].clone());
            new_flags.push(self.leader_flags[o]);
            new_weights.push(weights[o]);
        }
        for id in self.ids.values_mut() {
            if *id != DEAD_ID {
                *id = map[*id as usize];
            }
        }
        debug_assert_eq!(self.support, live.len());
        self.states = new_states;
        self.outputs = new_outputs;
        self.leader_flags = new_flags;
        self.sampler = SumTreeSampler::from_weights(&new_weights).expect("population is non-empty");
        self.pairs.compact(&map, live.len());
        self.pairs.ensure_states(self.states.len());
        // Ledger ids are stale: drop and reseed from the compacted cache.
        // Engagement re-probes immediately (the caller reviews jump next).
        self.tiers.jump.ledger.clear();
        self.tiers.jump.engaged = false;
        self.reseed_jump_ledger();
        let (step, live_after) = (self.steps, self.states.len() as u64);
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.record(EngineEvent::Compaction {
                step,
                live_before,
                live_after,
            });
        }
    }

    /// Jump engagement probe: rebuilds the ledger's weights against the
    /// current counts and engages when known-null pairs carry at least
    /// `1 − 1/jump_engage_factor` of the total scheduler weight.
    fn probe_jump(&mut self) {
        let jump = &self.tiers.jump;
        if jump.engaged || !jump.enabled || !self.pairs.is_active() || jump.ledger.is_empty() {
            return;
        }
        if self.n > u64::from(u32::MAX) {
            // W_total = n(n−1) must fit u64 for exact integer pair sampling.
            return;
        }
        self.tiers.jump.ledger.rebuild(self.sampler.weights());
        let w_total = self.n * (self.n - 1);
        let w_active = w_total - self.tiers.jump.ledger.w_null();
        if w_active.saturating_mul(self.tiers.config.jump_engage_factor) <= w_total {
            self.tiers.jump.engaged = true;
            let step = self.steps;
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.record(EngineEvent::JumpEngage {
                    step,
                    w_active,
                    w_total,
                });
            }
        }
    }

    /// Batch engage/disengage heuristics (see
    /// [`EngineConfig::batch_support_divisor`]); the jump scheduler, when
    /// engaged, preempts batch in dispatch regardless of this flag.
    fn review_batch(&mut self) {
        let config = self.tiers.config;
        let batch = &mut self.tiers.batch;
        if batch.forced {
            batch.engaged = true;
            return;
        }
        if !batch.enabled || !self.pairs.is_active() {
            batch.engaged = false;
            return;
        }
        let was = batch.engaged;
        if was {
            if tier::batch_exits(self.support, self.n, &config) {
                batch.engaged = false;
            }
        } else if tier::batch_engages(self.support, self.n, &config) {
            batch.engaged = true;
        }
        let now = self.tiers.batch.engaged;
        if now != was {
            let (step, support) = (self.steps, self.support as u64);
            let expected_run = tier::expected_run_length(self.n);
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.record(if now {
                    EngineEvent::BatchEngage {
                        step,
                        support,
                        expected_run,
                    }
                } else {
                    EngineEvent::BatchExit {
                        step,
                        support,
                        expected_run,
                    }
                });
            }
        }
    }

    /// Executes one jump episode against the current configuration (see
    /// [`crate::jump`]): telescopes the geometric run of known-null draws in
    /// `O(1)`, then draws one interaction from the active-candidate
    /// distribution and executes it. Consumes at most `max` interactions
    /// (`max > 0` required); returns `(consumed, leader_delta)`, where the
    /// delta is the executed interaction's cached leader-count change — or 0
    /// when the budget ran out inside the null run, which leaves the
    /// configuration untouched by construction.
    fn jump_episode(&mut self, max: u64) -> (u64, i8) {
        debug_assert!(max > 0);
        self.tiers.jump.ledger.sync(self.sampler.weights());
        let w_total = self.n * (self.n - 1);
        let w_null = self.tiers.jump.ledger.w_null();
        let w_active = w_total - w_null;
        if w_active == 0 {
            // Every realizable ordered pair is known-null: the configuration
            // is silent and the remaining budget telescopes away whole.
            self.steps += max;
            self.tiers.jump.stats.skipped += max;
            return (max, 0);
        }
        let skip = if w_null == 0 {
            0
        } else {
            let p = w_active as f64 / w_total as f64;
            Geometric::new(p)
                .expect("w_active in (0, w_total] gives p in (0, 1]")
                .sample(&mut self.rng)
        };
        if skip >= max {
            self.steps += max;
            self.tiers.jump.stats.skipped += max;
            return (max, 0);
        }
        self.tiers.jump.stats.skipped += skip;
        self.tiers.jump.stats.episodes += 1;
        self.steps += skip + 1;
        let u = self.rng.below(w_active);
        let (s, t) = self
            .tiers
            .jump
            .ledger
            .sample_active(self.sampler.weights(), self.n, u);
        let (a, b, delta, null) = self.pair_effect(s, t);
        self.move_agent(s, a);
        self.move_agent(t, b);
        // Resync the null weights of pairs touching the states whose counts
        // changed (idempotent per state, so shared pairs need no dedup). A
        // dirty ledger — compile_pair discovered a fresh null — rebuilds on
        // the next episode instead.
        if !null && !self.tiers.jump.ledger.is_dirty() {
            let Self { tiers, sampler, .. } = self;
            let counts = sampler.weights();
            tiers.jump.ledger.on_count_change(s, counts);
            tiers.jump.ledger.on_count_change(a, counts);
            tiers.jump.ledger.on_count_change(t, counts);
            tiers.jump.ledger.on_count_change(b, counts);
        }
        if !self.tiers.jump.forced && self.tiers.jump.engaged {
            let w_active_now = w_total - self.tiers.jump.ledger.w_null();
            if w_active_now.saturating_mul(self.tiers.config.jump_exit_factor) > w_total {
                self.tiers.jump.engaged = false;
                self.tiers.review_at = self.steps + self.review_interval();
                let (step, stats) = (self.steps, self.tiers.jump.stats);
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.record(EngineEvent::JumpDisengage {
                        step,
                        w_active: w_active_now,
                        w_total,
                        episodes: stats.episodes,
                        skipped: stats.skipped,
                    });
                }
            }
        }
        (skip + 1, delta)
    }

    /// Executes one batch episode (see [`crate::batch`] and
    /// [`crate::round`]): samples the maximal collision-free prefix (capped
    /// at `max`, which must be positive), applies it in bulk from the
    /// two-urn decomposition, and executes the terminating collision
    /// interaction individually when it falls inside the budget —
    /// dispatched through the [`RoundLaw`] selected by
    /// [`EngineConfig::law_mode`]. Returns `(consumed, hit)`; with
    /// `leaders` supplied the running count is maintained exactly, and a
    /// segment that could touch a count of 1 is resolved by the exact
    /// shuffled walk, stopping (and discarding the unexecuted tail) at the
    /// precise hitting step.
    fn batch_episode(&mut self, max: u64, leaders: Option<&mut i64>) -> (u64, bool) {
        match self.tiers.config.law_mode {
            LawMode::SequenceExpansion => self.law_episode::<SequenceExpansionLaw>(max, leaders),
            LawMode::Contingency => self.law_episode::<ContingencyLaw>(max, leaders),
            LawMode::MultiRound => self.law_episode::<MultiRoundLaw>(max, leaders),
        }
    }

    /// The law-generic episode body behind [`batch_episode`](Self::
    /// batch_episode): chains up to `L::SEGMENTS` collision-free segments
    /// through one urn lifetime (`begin` once, merge once), drawing each
    /// segment's structure from the law and its length from the
    /// continuation run-length law conditioned on every agent used so far.
    fn law_episode<L: RoundLaw>(&mut self, max: u64, mut leaders: Option<&mut i64>) -> (u64, bool) {
        debug_assert!(max > 0);
        let mut scratch = std::mem::take(&mut self.tiers.batch.scratch);
        scratch.begin(self.sampler.weights());
        let mut consumed = 0u64;
        let mut bulk_total = 0u64;
        let mut hit = false;
        let mut segment = 0u32;
        let mut collided = false;
        let mut walked_any = false;
        loop {
            segment += 1;
            let (bulk, collide) = round::collision_free_prefix_from(
                &mut self.rng,
                self.n,
                scratch.used_total,
                max - consumed,
            );
            self.tiers.batch.stats.episode_segments += 1;
            // The leader count can touch 1 inside the segment only within
            // ±2 per interaction of its entry value; segments that provably
            // cannot skip the walk and apply pure bulk deltas.
            let walk = leaders
                .as_deref()
                .is_some_and(|&l| (l - 1).unsigned_abs() <= 2 * bulk);
            if walk {
                self.tiers.batch.stats.exact_walks += 1;
                walked_any = true;
            }
            let draw = L::draw_segment(
                &mut scratch,
                &mut self.rng,
                bulk,
                walk,
                &mut self.tiers.batch.stats,
            );
            let mut executed = 0u64;
            match draw {
                SegmentDraw::Sequences => {
                    for i in 0..bulk as usize {
                        let s = scratch.init_seq[i] as usize;
                        let t = scratch.resp_seq[i] as usize;
                        let (a, b, delta, _) = self.pair_effect(s, t);
                        scratch.ensure_states(self.states.len());
                        scratch.add_used(a);
                        scratch.add_used(b);
                        executed += 1;
                        if let Some(l) = leaders.as_deref_mut() {
                            *l += i64::from(delta);
                            if walk && delta != 0 && *l == 1 {
                                hit = true;
                                // Return the reserved-but-unexecuted tail to
                                // the fresh urn; those agents never
                                // interacted.
                                for j in i + 1..bulk as usize {
                                    let init = scratch.init_seq[j] as usize;
                                    scratch.return_fresh(init);
                                    let resp = scratch.resp_seq[j] as usize;
                                    scratch.return_fresh(resp);
                                }
                                break;
                            }
                        }
                    }
                }
                SegmentDraw::Cells => {
                    // Aggregated apply: `c` identical interactions collapse
                    // into one cache lookup and one urn update per side.
                    // `walk` forces Sequences, so no hitting-step check is
                    // needed here — the count provably stays away from 1.
                    debug_assert!(!walk);
                    for idx in 0..scratch.cells.len() {
                        let (s, t, c) = scratch.cells[idx];
                        let (a, b, delta, _) = self.pair_effect(s as usize, t as usize);
                        scratch.ensure_states(self.states.len());
                        scratch.add_used_n(a, c);
                        scratch.add_used_n(b, c);
                        executed += c;
                        if let Some(l) = leaders.as_deref_mut() {
                            *l += i64::from(delta) * c as i64;
                        }
                    }
                }
            }
            consumed += executed;
            bulk_total += executed;
            if collide && !hit {
                // The terminating interaction touches at least one used
                // agent. Used agents are exchangeable given their counts, so
                // the participants are drawn from exact integer category
                // weights over (used, fresh) ordered pairs, excluding
                // fresh-fresh.
                debug_assert_eq!(executed, bulk);
                let used = scratch.used_total;
                let fresh = scratch.fresh_total;
                let w_uu = used * (used - 1);
                let w_uf = used * fresh;
                let pick = self.rng.below(w_uu + 2 * w_uf);
                let (iu, ru) = if pick < w_uu {
                    (true, true)
                } else if pick < w_uu + w_uf {
                    (true, false)
                } else {
                    (false, true)
                };
                let s = scratch.draw_one(&mut self.rng, iu);
                let t = scratch.draw_one(&mut self.rng, ru);
                let (a, b, delta, _) = self.pair_effect(s, t);
                scratch.ensure_states(self.states.len());
                scratch.add_used(a);
                scratch.add_used(b);
                consumed += 1;
                self.tiers.batch.stats.collision_interactions += 1;
                collided = true;
                if let Some(l) = leaders.as_deref_mut() {
                    *l += i64::from(delta);
                    hit = *l == 1 && delta != 0;
                }
            }
            // Chain another segment only if a collision (not budget
            // exhaustion) ended this one, the law allows it, convergence
            // wasn't hit, and budget remains to spend.
            if !collide || hit || segment >= L::SEGMENTS || consumed >= max {
                break;
            }
        }
        // Merge the urns back into the sampler counts.
        let states = self.states.len();
        scratch.ensure_states(states);
        for id in 0..states {
            let new = scratch.fresh[id] + scratch.used[id];
            let old = self.sampler.weights()[id];
            if new != old {
                self.sampler
                    .add(id, new as i64 - old as i64)
                    .expect("slot exists");
                self.support = self.support + usize::from(old == 0) - usize::from(new == 0);
            }
        }
        self.steps += consumed;
        let stats = &mut self.tiers.batch.stats;
        stats.episodes += 1;
        stats.bulk_interactions += bulk_total;
        self.tiers.batch.scratch = scratch;
        // Counts changed wholesale behind the jump ledger's back.
        if !self.tiers.jump.ledger.is_empty() {
            self.tiers.jump.ledger.mark_dirty();
        }
        let (step, law) = (self.steps, self.tiers.config.law_mode);
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.record(EngineEvent::BatchEpisode {
                step,
                law,
                segments: u64::from(segment),
                bulk: bulk_total,
                collision: collided,
                walked: walked_any,
            });
        }
        (consumed, hit)
    }

    /// Executes exactly `steps` interactions.
    ///
    /// Dispatches through the tier controller: jump episodes wherever the
    /// scheduler is engaged, batch rounds wherever the batch tier is, and
    /// compiled per-step chunks otherwise, with tier reviews at batch
    /// boundaries (see the module docs for the tier taxonomy).
    pub fn run(&mut self, steps: u64) {
        let mut remaining = steps;
        while remaining > 0 {
            // Observation work happens only here, at dispatch boundaries:
            // one branch on the detached path, tier-transition events plus
            // monotonic-clock spans on the attached one. Neither touches
            // the RNG, so attached/detached twins stay bit-identical.
            let watched = self.obs.is_some();
            let before = if watched {
                Some(self.active_tier())
            } else {
                None
            };
            self.review_tiers();
            if let Some(from) = before {
                self.observe_transition(from);
            }
            if self.tiers.jump.engaged {
                let t0 = if watched { Some(Instant::now()) } else { None };
                let (consumed, _) = self.jump_episode(remaining);
                self.tiers.usage.note(EngineTier::Jump, consumed);
                if let Some(t0) = t0 {
                    self.note_time(EngineTier::Jump, consumed, t0);
                    self.observe_transition(EngineTier::Jump);
                }
                remaining -= consumed;
                continue;
            }
            if self.tiers.batch.engaged {
                let t0 = if watched { Some(Instant::now()) } else { None };
                let (consumed, _) = self.batch_episode(remaining, None);
                self.tiers.usage.note(EngineTier::Batch, consumed);
                if let Some(t0) = t0 {
                    self.note_time(EngineTier::Batch, consumed, t0);
                }
                remaining -= consumed;
                continue;
            }
            let window = remaining
                .min(self.tiers.review_at.saturating_sub(self.steps))
                .max(1);
            let t0 = if watched { Some(Instant::now()) } else { None };
            let mut left = window;
            while left > 0 {
                let did = self.run_chunk(left);
                if did == 0 {
                    debug_assert!(false, "run_chunk always makes progress");
                    return;
                }
                left -= did;
            }
            let tier = if self.pairs.is_active() {
                EngineTier::Compiled
            } else {
                EngineTier::Reference
            };
            self.tiers.usage.note(tier, window);
            if let Some(t0) = t0 {
                self.note_time(tier, window, t0);
            }
            remaining -= window;
        }
    }

    /// Runs until `predicate` holds (checked every `batch` steps, starting
    /// immediately) or `max_steps` total interactions have executed.
    ///
    /// The predicate is evaluated only at batch boundaries, so per-step work
    /// stays on the hash-free fast path; choose `batch` against the
    /// resolution the convergence condition needs (e.g. `n/4` steps for a
    /// parallel-time-scale condition).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn run_batched<F>(&mut self, batch: u64, max_steps: u64, mut predicate: F) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        assert!(batch > 0, "batch must be positive");
        loop {
            if predicate(self) {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            if self.steps >= max_steps {
                return RunOutcome {
                    steps: self.steps,
                    converged: false,
                };
            }
            let burst = batch.min(max_steps - self.steps);
            self.run(burst);
        }
    }
}

impl<P: LeaderElection, R: Rng64> CountSimulation<P, R> {
    /// Counts the current leaders in `O(#states)`.
    pub fn leader_count(&self) -> u64 {
        (0..self.states.len())
            .filter(|&i| self.outputs[i] == Role::Leader)
            .map(|i| self.sampler.weights()[i])
            .sum()
    }

    /// Primes per-state leader flags (and retrofits the leader deltas of any
    /// already-compiled pairs) so convergence loops can read each step's
    /// leader-count change straight from the cache.
    fn prime_role_tracking(&mut self) {
        if self.leader_output.is_some() {
            return;
        }
        self.leader_output = Some(Role::Leader);
        for i in 0..self.states.len() {
            self.leader_flags[i] = i8::from(self.outputs[i] == Role::Leader);
        }
        let flags = &self.leader_flags;
        self.pairs.for_each_filled_mut(|s, t, entry| {
            let (a, b, _, null) = compiled::unpack(*entry);
            let delta = flags[a] + flags[b] - flags[s] - flags[t];
            *entry = compiled::pack(a, b, delta, null);
        });
    }

    /// Like [`run_chunk`](Self::run_chunk), but additionally folds each
    /// interaction's cached `leader_delta` into `leaders`, stopping the
    /// moment the count hits exactly 1. Returns `true` on that hit, with
    /// [`steps`](Self::steps) exact.
    fn leader_chunk(&mut self, max: u64, leaders: &mut i64) -> bool {
        let mut pending = None;
        let mut done = 0u64;
        let mut count = *leaders;
        let mut hit = false;
        {
            let Self {
                sampler,
                rng,
                pairs,
                support,
                ..
            } = self;
            let mut sup = *support;
            while done < max {
                let Ok((s, t)) = sampler.sample_pair_distinct(rng) else {
                    debug_assert!(false, "population has >= 2 agents");
                    break;
                };
                let entry = pairs.get(s, t);
                if entry == compiled::EMPTY {
                    pending = Some((s, t));
                    break;
                }
                let (a, b, delta, _) = compiled::unpack(entry);
                let (Ok(e1), Ok(e2)) = (sampler.transfer(s, a), sampler.transfer(t, b)) else {
                    debug_assert!(false, "interned slots exist");
                    break;
                };
                sup = sup + usize::from(e1.populated) + usize::from(e2.populated)
                    - usize::from(e1.emptied)
                    - usize::from(e2.emptied);
                done += 1;
                if delta != 0 {
                    count += i64::from(delta);
                    if count == 1 {
                        hit = true;
                        break;
                    }
                }
            }
            *support = sup;
        }
        self.steps += done;
        if let Some((s, t)) = pending {
            if !hit {
                self.steps += 1;
                let (a, b, delta, _) = self.compile_pair(s, t);
                self.move_agent(s, a);
                self.move_agent(t, b);
                if delta != 0 {
                    count += i64::from(delta);
                    hit = count == 1;
                }
            }
        }
        *leaders = count;
        hit
    }

    /// Runs until exactly one leader remains (see
    /// [`Simulation::run_until_single_leader`](crate::Simulation::run_until_single_leader)
    /// for the stabilization-time caveat).
    ///
    /// The leader count is maintained from the cached `leader_delta` of each
    /// compiled pair — two integer ops per step — and the step-budget check
    /// runs once per batch, not once per step. The returned step count is
    /// still exact on every tier: per-step chunks check at each step that
    /// changes the count, jump episodes report their one executed
    /// interaction's delta, and batch rounds that could touch a count of 1
    /// resolve through the exact shuffled walk.
    pub fn run_until_single_leader(&mut self, max_steps: u64) -> RunOutcome {
        self.prime_role_tracking();
        let mut leaders = self.leader_count() as i64;
        let watched = self.obs.is_some();
        if watched {
            // Initial trajectory sample (covers the entry configuration).
            self.sample_trajectory(leaders, true);
        }
        loop {
            if leaders == 1 || self.steps >= max_steps {
                if watched {
                    // Final sample: the trace's last row always matches the
                    // reported outcome, grid-aligned or not.
                    self.sample_trajectory(leaders, true);
                }
                return RunOutcome {
                    steps: self.steps,
                    converged: leaders == 1,
                };
            }
            let before = if watched {
                Some(self.active_tier())
            } else {
                None
            };
            self.review_tiers();
            if let Some(from) = before {
                self.observe_transition(from);
            }
            if self.tiers.jump.engaged {
                // Null interactions cannot change the leader count, so the
                // telescoped run needs no bookkeeping; the episode's one
                // executed interaction reports its cached delta and the step
                // counter stays exact at the moment the count hits 1.
                let t0 = if watched { Some(Instant::now()) } else { None };
                let (consumed, delta) = self.jump_episode(max_steps - self.steps);
                self.tiers.usage.note(EngineTier::Jump, consumed);
                leaders += i64::from(delta);
                if let Some(t0) = t0 {
                    self.note_time(EngineTier::Jump, consumed, t0);
                    self.observe_transition(EngineTier::Jump);
                    self.sample_trajectory(leaders, false);
                }
                continue;
            }
            if self.tiers.batch.engaged {
                let t0 = if watched { Some(Instant::now()) } else { None };
                let (consumed, hit) =
                    self.batch_episode(max_steps - self.steps, Some(&mut leaders));
                self.tiers.usage.note(EngineTier::Batch, consumed);
                debug_assert_eq!(hit, leaders == 1);
                // Sampled invariant check: once per round, not per step.
                debug_assert_eq!(leaders, self.leader_count() as i64);
                if let Some(t0) = t0 {
                    self.note_time(EngineTier::Batch, consumed, t0);
                    self.sample_trajectory(leaders, false);
                }
                continue;
            }
            let burst = CONVERGENCE_BATCH
                .min(max_steps - self.steps)
                .min(self.tiers.review_at.saturating_sub(self.steps))
                .min(self.sample_window())
                .max(1);
            let t0 = if watched { Some(Instant::now()) } else { None };
            let from = self.steps;
            let hit = self.leader_chunk(burst, &mut leaders);
            let tier = if self.pairs.is_active() {
                EngineTier::Compiled
            } else {
                EngineTier::Reference
            };
            self.tiers.usage.note(tier, self.steps - from);
            if let Some(t0) = t0 {
                self.note_time(tier, self.steps - from, t0);
                self.sample_trajectory(leaders, false);
            }
            if hit {
                if watched {
                    self.sample_trajectory(leaders, true);
                }
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            // Sampled invariant check: once per batch, not per step.
            debug_assert_eq!(leaders, self.leader_count() as i64);
        }
    }
}

impl<P, R> CountSimulation<P, R>
where
    P: Protocol,
    P::State: SnapshotState,
    R: Rng64 + RngSnapshot,
{
    /// Serializes the complete mid-election execution into the versioned
    /// binary snapshot format of [`crate::snapshot`].
    ///
    /// The snapshot is a **transparent pause**: feeding the bytes to
    /// [`resume`](Self::resume) between two driver calls yields a simulation
    /// whose remaining trajectory is *bit-identical* — same RNG draws, same
    /// interactions at the same step counts, same configurations — to the
    /// original continuing without the pause, on every tier. (It does not
    /// make `run(a); run(b)` bit-identical to `run(a + b)` on the jump/batch
    /// tiers; those were never bit-identical, because a budget cap can
    /// truncate an episode and discard its draws. The pause preserves
    /// whatever call segmentation the caller uses.)
    ///
    /// Equal executions produce byte-identical snapshots: everything
    /// iteration-order-sensitive (the seen-state map) is serialized in a
    /// canonical order.
    ///
    /// Takes `&mut self` only to record a [`EngineEvent::SnapshotTaken`]
    /// event on an attached observer; the simulation state proper is not
    /// modified.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();

        w.begin_section(snapshot::TAG_CONFIG);
        let c = &self.tiers.config;
        w.put_u64(c.max_compiled_states as u64);
        w.put_u64(c.jump_engage_factor);
        w.put_u64(c.jump_exit_factor);
        w.put_u64(c.batch_support_divisor);
        w.put_u64(c.batch_min_population);
        w.put_bool(c.compaction);
        w.put_u8(c.law_mode.tag());
        w.end_section();

        w.begin_section(snapshot::TAG_POPULATION);
        w.put_u64(self.n);
        w.put_u64(self.steps);
        w.put_u64(self.tiers.review_at);
        w.put_u64(self.states.len() as u64);
        let weights = self.sampler.weights();
        for (slot, state) in self.states.iter().enumerate() {
            // Zero-weight live slots are serialized too: compiled entries
            // reference them by id, so slot order is trajectory state.
            w.put_state(state);
            w.put_u64(weights[slot]);
        }
        // Dead (seen-only) states sorted by encoding: the map's iteration
        // order is nondeterministic, and equal executions must snapshot to
        // equal bytes.
        let mut dead: Vec<Vec<u8>> = self
            .ids
            .iter()
            .filter(|&(_, &id)| id == DEAD_ID)
            .map(|(state, _)| {
                let mut buf = Vec::new();
                state.encode(&mut buf);
                buf
            })
            .collect();
        dead.sort_unstable();
        w.put_u64(dead.len() as u64);
        for encoding in &dead {
            w.put_raw(encoding);
        }
        w.end_section();

        w.begin_section(snapshot::TAG_CACHE);
        let (cache_active, shift, has_table) = self.pairs.snapshot_geometry();
        w.put_bool(cache_active);
        w.put_bool(has_table);
        w.put_u32(shift);
        w.put_u64(self.pairs.compiled_pairs() as u64);
        self.pairs.for_each_filled(|s, t, entry| {
            w.put_u16(s as u16);
            w.put_u16(t as u16);
            w.put_u32(entry);
        });
        w.end_section();

        w.begin_section(snapshot::TAG_TIERS);
        let jump = &self.tiers.jump;
        w.put_bool(jump.enabled);
        w.put_bool(jump.engaged);
        w.put_bool(jump.forced);
        w.put_u64(jump.stats.episodes);
        w.put_u64(jump.stats.skipped);
        let batch = &self.tiers.batch;
        w.put_bool(batch.enabled);
        w.put_bool(batch.engaged);
        w.put_bool(batch.forced);
        w.put_u64(batch.stats.episodes);
        w.put_u64(batch.stats.bulk_interactions);
        w.put_u64(batch.stats.collision_interactions);
        w.put_u64(batch.stats.exact_walks);
        w.put_u64(batch.stats.contingency_draws);
        w.put_u64(batch.stats.shuffle_skips);
        w.put_u64(batch.stats.episode_segments);
        // v3: per-tier interaction usage survives the pause so resumed
        // metrics keep attributing work to the tier that did it.
        let usage = &self.tiers.usage;
        w.put_u64(usage.reference);
        w.put_u64(usage.compiled);
        w.put_u64(usage.jump);
        w.put_u64(usage.batch);
        w.end_section();

        w.begin_section(snapshot::TAG_RNG);
        let words = self.rng.export_state();
        w.put_u64(words.len() as u64);
        for word in words {
            w.put_u64(word);
        }
        w.end_section();

        let bytes = w.finish();
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.record(EngineEvent::SnapshotTaken {
                step: self.steps,
                bytes: bytes.len() as u64,
            });
        }
        bytes
    }

    /// Rebuilds a simulation from [`snapshot`](Self::snapshot) bytes,
    /// resuming the execution under the bit-identical contract documented
    /// there. `protocol` must be the same protocol (value, not just type)
    /// the snapshot was taken with — transitions are recompiled on demand
    /// from it, so a different protocol silently diverges.
    ///
    /// Role tracking resumes unprimed; the first
    /// [`run_until_single_leader`](Self::run_until_single_leader) call
    /// re-primes idempotently and retrofits every cached leader delta, so
    /// convergence runs behave identically.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] — never panics — on truncated,
    /// corrupted, wrong-magic, or future-version input, and on any decoded
    /// state that is internally inconsistent (counts not summing to the
    /// population, cache entries referencing unknown ids, duplicate states,
    /// invalid RNG words).
    pub fn resume(protocol: P, bytes: &[u8]) -> Result<Self, SnapshotError> {
        use SnapshotError::Corrupt;
        let mut r = SnapshotReader::open(bytes)?;

        let mut sec = r.section(snapshot::TAG_CONFIG)?;
        let config = EngineConfig {
            max_compiled_states: usize::try_from(sec.get_u64()?)
                .map_err(|_| Corrupt("compiled-state cap overflows usize"))?,
            jump_engage_factor: sec.get_u64()?,
            jump_exit_factor: sec.get_u64()?,
            batch_support_divisor: sec.get_u64()?,
            batch_min_population: sec.get_u64()?,
            compaction: sec.get_bool()?,
            law_mode: LawMode::from_tag(sec.get_u8()?)
                .ok_or(Corrupt("unknown round-law mode tag"))?,
        };
        sec.expect_end("config section has trailing bytes")?;

        let mut sec = r.section(snapshot::TAG_POPULATION)?;
        let n = sec.get_u64()?;
        let steps = sec.get_u64()?;
        let review_at = sec.get_u64()?;
        let live = sec.get_u64()?;
        if live == 0 || live >= u64::from(DEAD_ID) {
            return Err(Corrupt("live state count out of range"));
        }
        let mut states = Vec::new();
        let mut weights = Vec::new();
        for _ in 0..live {
            states.push(sec.get_state::<P::State>()?);
            weights.push(sec.get_u64()?);
        }
        let dead_count = sec.get_u64()?;
        let mut dead = Vec::new();
        for _ in 0..dead_count {
            dead.push(sec.get_state::<P::State>()?);
        }
        sec.expect_end("population section has trailing bytes")?;

        let mut sec = r.section(snapshot::TAG_CACHE)?;
        let cache_active = sec.get_bool()?;
        let has_table = sec.get_bool()?;
        let shift = sec.get_u32()?;
        let entry_count = sec.get_u64()?;
        let mut entries = Vec::new();
        for _ in 0..entry_count {
            entries.push((sec.get_u16()?, sec.get_u16()?, sec.get_u32()?));
        }
        sec.expect_end("cache section has trailing bytes")?;

        let mut sec = r.section(snapshot::TAG_TIERS)?;
        let jump_flags = (sec.get_bool()?, sec.get_bool()?, sec.get_bool()?);
        let jump_stats = JumpStats {
            episodes: sec.get_u64()?,
            skipped: sec.get_u64()?,
        };
        let batch_flags = (sec.get_bool()?, sec.get_bool()?, sec.get_bool()?);
        let batch_stats = BatchStats {
            episodes: sec.get_u64()?,
            bulk_interactions: sec.get_u64()?,
            collision_interactions: sec.get_u64()?,
            exact_walks: sec.get_u64()?,
            contingency_draws: sec.get_u64()?,
            shuffle_skips: sec.get_u64()?,
            episode_segments: sec.get_u64()?,
        };
        let usage = TierUsage {
            reference: sec.get_u64()?,
            compiled: sec.get_u64()?,
            jump: sec.get_u64()?,
            batch: sec.get_u64()?,
        };
        sec.expect_end("tier section has trailing bytes")?;

        let mut sec = r.section(snapshot::TAG_RNG)?;
        let word_count = sec.get_u64()?;
        let mut words = Vec::new();
        for _ in 0..word_count {
            words.push(sec.get_u64()?);
        }
        sec.expect_end("rng section has trailing bytes")?;
        r.expect_end("trailing bytes after the last section")?;

        // Cross-validation: the decoded pieces must describe one consistent
        // simulation before anything executable is built from them.
        if n < 2 {
            return Err(Corrupt("population below 2"));
        }
        let total = weights
            .iter()
            .try_fold(0u64, |acc, &w| acc.checked_add(w))
            .ok_or(Corrupt("count vector overflows"))?;
        if total != n {
            return Err(Corrupt("counts do not sum to the population"));
        }
        if (jump_flags.1 || batch_flags.1) && n > u64::from(u32::MAX) {
            // Engaged fast tiers compute n(n−1) in u64.
            return Err(Corrupt("fast tier engaged beyond its population cap"));
        }
        for &(s, t, entry) in &entries {
            let (a, b, _, _) = compiled::unpack(entry);
            if (s as usize).max(t as usize).max(a).max(b) >= states.len() {
                return Err(Corrupt("pair-cache entry references an unknown state id"));
            }
        }

        let mut tiers = TierController::new(config);
        if tiers.config != config {
            // The writer only serializes already-validated configs.
            return Err(Corrupt("engine config outside its valid range"));
        }
        tiers.review_at = review_at;
        (tiers.jump.enabled, tiers.jump.engaged, tiers.jump.forced) = jump_flags;
        tiers.jump.stats = jump_stats;
        (tiers.batch.enabled, tiers.batch.engaged, tiers.batch.forced) = batch_flags;
        tiers.batch.stats = batch_stats;
        tiers.usage = usage;

        let pairs = PairCache::restore(
            config.max_compiled_states,
            cache_active,
            shift,
            has_table,
            &entries,
        )
        .ok_or(Corrupt("pair-cache table is inconsistent"))?;

        let mut ids = HashMap::new();
        for (slot, state) in states.iter().enumerate() {
            if ids.insert(state.clone(), slot as u32).is_some() {
                return Err(Corrupt("duplicate live state"));
            }
        }
        for state in dead {
            if ids.insert(state, DEAD_ID).is_some() {
                return Err(Corrupt("duplicate seen state"));
            }
        }

        let outputs: Vec<P::Output> = states.iter().map(|s| protocol.output(s)).collect();
        let leader_flags = vec![0i8; states.len()];
        let support = weights.iter().filter(|&&w| w > 0).count();
        let sampler =
            SumTreeSampler::from_weights(&weights).map_err(|_| Corrupt("empty count vector"))?;
        let rng = R::import_state(&words).ok_or(Corrupt("invalid RNG state"))?;

        let mut sim = Self {
            protocol,
            rng,
            ids,
            states,
            outputs,
            leader_flags,
            leader_output: None,
            support,
            sampler,
            pairs,
            tiers,
            n,
            steps,
            obs: None,
            resumed_at: Some(steps),
        };
        // The null ledger is recomputed state: reseed the pair set from the
        // cache's null entries; the next probe/episode re-syncs the weights
        // deterministically from the counts (registration order is erased by
        // the ledger's sort-and-dedup rebuild).
        sim.reseed_jump_ledger();
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulation, UniformScheduler};
    use pp_rand::SeedSequence;

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Frat {
        fn monotone_leaders(&self) -> bool {
            true
        }
    }

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn population_is_conserved() {
        let mut sim = CountSimulation::new(Frat, 100, rng(1)).unwrap();
        for _ in 0..1000 {
            sim.step();
            let total: u64 = sim.state_counts().values().sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn leader_count_decreases_to_one() {
        let mut sim = CountSimulation::new(Frat, 500, rng(2)).unwrap();
        let outcome = sim.run_until_single_leader(100_000_000);
        assert!(outcome.converged);
        assert_eq!(sim.leader_count(), 1);
        assert_eq!(sim.distinct_states_seen(), 2);
        assert_eq!(sim.support_size(), 2);
    }

    #[test]
    fn rejects_tiny_population() {
        assert!(CountSimulation::new(Frat, 1, rng(0)).is_err());
        assert!(CountSimulation::from_counts(Frat, [(true, 1)], rng(0)).is_err());
    }

    #[test]
    fn from_counts_sets_up_configuration() {
        let sim = CountSimulation::from_counts(Frat, [(true, 3), (false, 7)], rng(3)).unwrap();
        assert_eq!(sim.population(), 10);
        assert_eq!(sim.leader_count(), 3);
        assert_eq!(sim.count_of(&true), 3);
        assert_eq!(sim.count_of(&false), 7);
        assert_eq!(sim.support_size(), 2);
    }

    #[test]
    fn from_counts_ignores_zero_entries() {
        let sim = CountSimulation::from_counts(Frat, [(true, 2), (false, 0)], rng(4)).unwrap();
        assert_eq!(sim.population(), 2);
        assert_eq!(sim.distinct_states_seen(), 1);
        assert_eq!(sim.support_size(), 1);
    }

    #[test]
    fn agrees_with_agent_engine_distributionally() {
        // Mean convergence time of fratricide over seeds should agree between
        // engines (both simulate the same Markov chain exactly). Theory:
        // E[steps] = sum_{k=2..n} n(n-1)/(k(k-1)) ≈ n^2 * (1 - 1/n).
        let n = 64;
        let seeds = SeedSequence::new(99);
        let runs = 40;
        let mean = |use_count: bool| -> f64 {
            let mut total = 0u64;
            for i in 0..runs {
                let seed = seeds.seed_at(i);
                let steps = if use_count {
                    let mut sim = CountSimulation::new(Frat, n, rng(seed)).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                } else {
                    let sched = UniformScheduler::seed_from_u64(seed);
                    let mut sim = Simulation::new(Frat, n, sched).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                };
                total += steps;
            }
            total as f64 / runs as f64
        };
        let m_agent = mean(false);
        let m_count = mean(true);
        let theory: f64 = (2..=n as u64)
            .map(|k| (n as f64) * (n as f64 - 1.0) / (k as f64 * (k as f64 - 1.0)))
            .sum();
        // Loose agreement (Monte-Carlo with 40 runs): within 25% of theory.
        assert!(
            (m_agent / theory - 1.0).abs() < 0.25,
            "agent engine mean {m_agent} vs theory {theory}"
        );
        assert!(
            (m_count / theory - 1.0).abs() < 0.25,
            "count engine mean {m_count} vs theory {theory}"
        );
    }

    /// A protocol with unbounded state growth to exercise interning.
    #[derive(Debug, Clone, Copy)]
    struct Counter;

    impl Protocol for Counter {
        type State = u32;
        type Output = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn transition(&self, a: &u32, b: &u32) -> (u32, u32) {
            (a + 1, *b)
        }
        fn output(&self, s: &u32) -> u32 {
            *s
        }
    }

    #[test]
    fn interning_tracks_distinct_states() {
        let mut sim = CountSimulation::new(Counter, 10, rng(5)).unwrap();
        sim.run(100);
        assert!(sim.distinct_states_seen() > 1);
        let total: u64 = sim.state_counts().values().sum();
        assert_eq!(total, 10);
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    fn parallel_time_matches_steps() {
        let mut sim = CountSimulation::new(Frat, 50, rng(6)).unwrap();
        sim.run(100);
        assert!((sim.parallel_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_support_matches_snapshot() {
        let mut sim = CountSimulation::new(Counter, 16, rng(7)).unwrap();
        for _ in 0..500 {
            sim.step();
            assert_eq!(sim.support_size(), sim.state_counts().len());
        }
    }

    #[test]
    fn cached_and_uncached_runs_are_bit_identical() {
        // The compiled cache consumes no randomness, so the cached and
        // uncached engines must agree on every count at every single step.
        for seed in 0..4 {
            let mut cached = CountSimulation::new(Frat, 64, rng(seed)).unwrap();
            let mut reference = CountSimulation::new(Frat, 64, rng(seed)).unwrap();
            reference.set_compiled_cache(false);
            assert!(cached.pair_cache().is_active());
            assert!(!reference.pair_cache().is_active());
            for _ in 0..2000 {
                assert_eq!(cached.step(), reference.step());
                assert_eq!(cached.state_counts(), reference.state_counts());
                assert_eq!(cached.support_size(), reference.support_size());
            }
        }
    }

    #[test]
    fn cached_and_uncached_convergence_steps_agree() {
        // Bit-exact comparison, so the jump scheduler and batch tier (which
        // consume the RNG stream differently) stay off on the cached side;
        // their own equivalence-in-law suites live in
        // tests/jump_equivalence.rs and tests/batch_equivalence.rs.
        let mut cached = CountSimulation::new(Frat, 200, rng(11)).unwrap();
        cached.set_jump_scheduler(false);
        cached.set_batch_tier(false);
        let mut reference = CountSimulation::new(Frat, 200, rng(11)).unwrap();
        reference.set_compiled_cache(false);
        let a = cached.run_until_single_leader(u64::MAX);
        let b = reference.run_until_single_leader(u64::MAX);
        assert_eq!(a, b);
        assert_eq!(cached.leader_count(), 1);
    }

    #[test]
    fn cache_saturates_on_state_explosion_and_stays_exact() {
        // Counter interns a fresh state on (almost) every interaction, so a
        // long per-step run blows past the addressable-id cap. The cache
        // must *saturate* (stay active, stop covering new ids) with no
        // behavioral difference vs. an uncached twin. Single steps never
        // compact (reviews run only in the batched drivers), so the interned
        // count genuinely exceeds the cap here.
        let mut cached = CountSimulation::new(Counter, 2, rng(12)).unwrap();
        let mut reference = CountSimulation::new(Counter, 2, rng(12)).unwrap();
        reference.set_compiled_cache(false);
        let steps = (compiled::MAX_COMPILED_STATES as u64 + 64) * 2;
        for _ in 0..steps {
            assert_eq!(cached.step(), reference.step());
        }
        assert!(cached.pair_cache().is_active(), "saturation, not a cliff");
        assert!(cached
            .pair_cache()
            .is_saturated(cached.distinct_states_seen()));
        assert_eq!(cached.state_counts(), reference.state_counts());
    }

    #[test]
    fn compaction_reclaims_dead_ids_in_batched_runs() {
        // Driven through run(), tier reviews compact the id space: the live
        // slot count stays bounded while distinct_states_seen keeps exact
        // count of everything ever interned.
        let mut sim = CountSimulation::new(Counter, 2, rng(13)).unwrap();
        sim.run(20_000);
        assert!(sim.distinct_states_seen() > 4096, "interning kept counting");
        assert!(
            sim.raw_counts().len() < 256,
            "live slots were not reclaimed: {}",
            sim.raw_counts().len()
        );
        assert!(sim.pair_cache().is_active());
        assert!(!sim.pair_cache().is_saturated(sim.raw_counts().len()));
        let total: u64 = sim.state_counts().values().sum();
        assert_eq!(total, 2);
        assert_eq!(sim.steps(), 20_000);
    }

    #[test]
    fn compaction_preserves_bit_identical_cached_uncached_twins() {
        // Compaction consumes no randomness and depends only on counts, so
        // cached and uncached twins must stay in lockstep across it.
        let mut cached = CountSimulation::new(Counter, 2, rng(14)).unwrap();
        cached.set_jump_scheduler(false);
        cached.set_batch_tier(false);
        let mut reference = CountSimulation::new(Counter, 2, rng(14)).unwrap();
        reference.set_compiled_cache(false);
        for _ in 0..64 {
            cached.run(300);
            reference.run(300);
            assert_eq!(cached.state_counts(), reference.state_counts());
            assert_eq!(
                cached.distinct_states_seen(),
                reference.distinct_states_seen()
            );
            assert_eq!(cached.support_size(), reference.support_size());
        }
    }

    #[test]
    fn run_batched_checks_only_at_batch_boundaries() {
        let mut sim = CountSimulation::new(Frat, 100, rng(13)).unwrap();
        let outcome = sim.run_batched(64, 1_000_000, |s| s.steps() >= 100);
        assert!(outcome.converged);
        // 100 is not a multiple of the batch: first boundary at/after 100.
        assert_eq!(outcome.steps, 128);
        let outcome = sim.run_batched(64, 200, |_| false);
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 200);
    }

    #[test]
    fn run_batched_checks_predicate_before_running() {
        let mut sim = CountSimulation::new(Frat, 10, rng(14)).unwrap();
        let outcome = sim.run_batched(100, 1_000, |_| true);
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
    }

    #[test]
    fn pair_cache_compiles_pairs_lazily() {
        let mut sim = CountSimulation::new(Frat, 32, rng(15)).unwrap();
        assert_eq!(sim.pair_cache().compiled_pairs(), 0);
        sim.run(100);
        // Fratricide over {L, F} has at most 4 ordered pairs.
        assert!(sim.pair_cache().compiled_pairs() <= 4);
        assert!(sim.pair_cache().compiled_pairs() >= 1);
        assert!(sim.pair_cache().table_bytes() > 0);
    }

    #[test]
    fn batch_rounds_conserve_population_and_step_budgets() {
        let mut sim = CountSimulation::new(Frat, 256, rng(16)).unwrap();
        sim.force_batch_mode();
        for chunk in [1u64, 7, 64, 1000, 4096] {
            let before = sim.steps();
            sim.run(chunk);
            assert_eq!(sim.steps(), before + chunk);
            let total: u64 = sim.state_counts().values().sum();
            assert_eq!(total, 256);
            assert_eq!(sim.support_size(), sim.state_counts().len());
        }
        let stats = sim.batch_stats();
        assert!(stats.episodes > 0);
        assert!(stats.bulk_interactions > 0);
        assert_eq!(
            stats.bulk_interactions + stats.collision_interactions,
            sim.steps()
        );
    }

    #[test]
    fn batch_convergence_is_exact_to_single_leader() {
        for seed in 0..8 {
            let mut sim = CountSimulation::new(Frat, 128, rng(100 + seed)).unwrap();
            sim.force_batch_mode();
            let out = sim.run_until_single_leader(u64::MAX);
            assert!(out.converged);
            assert_eq!(sim.leader_count(), 1);
            assert_eq!(sim.steps(), out.steps);
            assert!(sim.batch_stats().exact_walks > 0, "tail must walk");
        }
    }

    #[test]
    fn batch_engages_heuristically_on_large_small_support_populations() {
        let mut sim = CountSimulation::new(Frat, 1 << 14, rng(17)).unwrap();
        assert_eq!(sim.active_tier(), EngineTier::Compiled);
        sim.run(1 << 12);
        // Fratricide's support is 2 ≪ √n: batch engages at the first review
        // (until the null fraction crosses the jump threshold much later).
        assert!(sim.batch_engaged());
        assert!(matches!(
            sim.active_tier(),
            EngineTier::Batch | EngineTier::Jump
        ));
        assert!(sim.batch_stats().episodes > 0);
    }

    #[test]
    fn batch_never_engages_below_population_floor() {
        let mut sim = CountSimulation::new(Frat, 200, rng(18)).unwrap();
        sim.run(50_000);
        assert_eq!(sim.batch_stats().episodes, 0);
        assert!(!sim.batch_engaged());
    }

    #[test]
    fn config_is_validated_and_tunable() {
        let config = EngineConfig {
            max_compiled_states: usize::MAX,
            batch_min_population: 0,
            ..EngineConfig::default()
        };
        let sim = CountSimulation::with_config(Frat, 64, rng(19), config).unwrap();
        assert_eq!(
            sim.config().max_compiled_states,
            compiled::MAX_COMPILED_STATES
        );
        assert_eq!(sim.config().batch_min_population, 2);
        // A lowered population floor lets batch engage at n = 64.
        let mut sim = CountSimulation::with_config(
            Frat,
            64,
            rng(20),
            EngineConfig {
                batch_min_population: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        sim.run(4096);
        assert!(sim.batch_stats().episodes > 0, "floor tuned away");
    }

    #[test]
    fn disabling_batch_tier_disengages() {
        let mut sim = CountSimulation::new(Frat, 1 << 14, rng(21)).unwrap();
        sim.run(1 << 12);
        assert!(sim.batch_engaged());
        sim.set_batch_tier(false);
        assert!(!sim.batch_engaged());
        assert!(!sim.batch_tier_enabled());
        let before = sim.batch_stats().episodes;
        sim.run(1 << 12);
        assert_eq!(sim.batch_stats().episodes, before);
    }

    /// Snapshots `sim`, resumes from the bytes, and drives the resumed copy
    /// and an in-memory clone through identical segments: every observable
    /// must match step-for-step (the transparent-pause contract).
    fn assert_transparent_pause<P>(protocol: P, sim: &CountSimulation<P, Xoshiro256PlusPlus>)
    where
        P: Protocol + Clone,
        P::State: SnapshotState,
    {
        let mut twin = sim.clone();
        let bytes = twin.snapshot();
        let mut resumed = CountSimulation::<P, Xoshiro256PlusPlus>::resume(protocol, &bytes)
            .expect("own snapshot must resume");
        assert_eq!(resumed.steps(), twin.steps());
        assert_eq!(resumed.population(), twin.population());
        assert_eq!(resumed.state_counts(), twin.state_counts());
        assert_eq!(
            resumed.snapshot(),
            bytes,
            "snapshotting a freshly resumed simulation must reproduce the bytes"
        );
        for &segment in &[509u64, 4096, 12_000] {
            twin.run(segment);
            resumed.run(segment);
            assert_eq!(resumed.steps(), twin.steps(), "steps after +{segment}");
            assert_eq!(
                resumed.state_counts(),
                twin.state_counts(),
                "counts after +{segment}"
            );
            assert_eq!(
                resumed.active_tier(),
                twin.active_tier(),
                "tier after +{segment}"
            );
        }
        assert_eq!(resumed.distinct_states_seen(), twin.distinct_states_seen());
    }

    #[test]
    fn snapshot_resume_is_transparent_on_compiled_tier() {
        let mut sim = CountSimulation::new(Frat, 1 << 10, rng(22)).unwrap();
        sim.run(500);
        assert_eq!(sim.active_tier(), EngineTier::Compiled);
        assert_transparent_pause(Frat, &sim);
    }

    #[test]
    fn snapshot_resume_is_transparent_on_reference_tier() {
        let mut sim = CountSimulation::new(Frat, 1 << 10, rng(23)).unwrap();
        sim.set_compiled_cache(false);
        sim.run(500);
        assert_eq!(sim.active_tier(), EngineTier::Reference);
        assert_transparent_pause(Frat, &sim);
    }

    #[test]
    fn snapshot_resume_is_transparent_on_forced_jump_tier() {
        let mut sim = CountSimulation::new(Frat, 1 << 10, rng(24)).unwrap();
        sim.force_jump_mode();
        sim.run(20_000);
        assert_eq!(sim.active_tier(), EngineTier::Jump);
        assert!(sim.jump_stats().skipped > 0);
        assert_transparent_pause(Frat, &sim);
    }

    #[test]
    fn snapshot_resume_is_transparent_on_forced_batch_tier() {
        let mut sim = CountSimulation::new(Frat, 1 << 10, rng(25)).unwrap();
        sim.force_batch_mode();
        sim.run(20_000);
        assert_eq!(sim.active_tier(), EngineTier::Batch);
        assert!(sim.batch_stats().episodes > 0);
        assert_transparent_pause(Frat, &sim);
    }

    #[test]
    fn snapshot_resume_is_transparent_under_heuristic_tier_transitions() {
        // Large-n Fratricide crosses Compiled → Batch/Jump on its own; pausing
        // right after the transition must not disturb the remaining run.
        let mut sim = CountSimulation::new(Frat, 1 << 14, rng(26)).unwrap();
        sim.run(1 << 12);
        assert!(sim.batch_engaged() || sim.jump_engaged());
        assert_transparent_pause(Frat, &sim);
    }

    #[test]
    fn snapshot_resume_preserves_leader_election_trajectory() {
        let mut sim = CountSimulation::new(Frat, 1 << 10, rng(27)).unwrap();
        // Pause mid-election: role tracking must re-prime on the resumed side.
        let _ = sim.run_until_single_leader(2_000);
        let mut twin = sim.clone();
        let mut resumed =
            CountSimulation::<Frat, Xoshiro256PlusPlus>::resume(Frat, &sim.snapshot())
                .expect("own snapshot must resume");
        let a = twin.run_until_single_leader(u64::MAX);
        let b = resumed.run_until_single_leader(u64::MAX);
        assert_eq!(a, b);
        assert_eq!(twin.steps(), resumed.steps());
        assert_eq!(twin.leader_count(), resumed.leader_count());
        assert_eq!(twin.state_counts(), resumed.state_counts());
    }

    #[test]
    fn snapshot_resume_roundtrips_dead_states() {
        // Counter keeps interning fresh states while old ones die out, so a
        // long run populates the seen-state map that the snapshot must carry.
        let mut sim = CountSimulation::new(Counter, 16, rng(28)).unwrap();
        sim.run(3_000);
        assert!(
            sim.distinct_states_seen() > sim.support_size(),
            "test needs dead states to exercise the seen-state section"
        );
        assert_transparent_pause(Counter, &sim);
    }

    #[test]
    fn resume_rejects_corrupt_bytes_without_panicking() {
        let mut sim = CountSimulation::new(Frat, 128, rng(29)).unwrap();
        sim.run(200);
        let bytes = sim.snapshot();
        for len in 0..bytes.len() {
            assert!(
                CountSimulation::<Frat, Xoshiro256PlusPlus>::resume(Frat, &bytes[..len]).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                CountSimulation::<Frat, Xoshiro256PlusPlus>::resume(Frat, &bad).is_err(),
                "bit flip at offset {i} must be rejected"
            );
        }
    }

    #[test]
    fn snapshot_format_canary() {
        // Golden hash of a fully deterministic snapshot. If this test fails,
        // the on-disk format changed: bump `SNAPSHOT_VERSION` in snapshot.rs
        // (old snapshots become unreadable by design) and re-pin the hash.
        let mut sim = CountSimulation::new(Frat, 256, rng(42)).unwrap();
        sim.run(1_000);
        let hash = crate::snapshot::fnv1a64(&sim.snapshot());
        const GOLDEN: u64 = 0xf7c3_918c_8188_2535;
        assert!(
            hash == GOLDEN || crate::snapshot::SNAPSHOT_VERSION > 3,
            "snapshot bytes changed under version 3 (hash {hash:#018x}); \
             bump SNAPSHOT_VERSION and update GOLDEN"
        );
    }
}
