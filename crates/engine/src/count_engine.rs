//! The exact count-based simulation engine.
//!
//! Agents in the population-protocol model are anonymous and the interaction
//! graph is complete, so the dynamics depend on the configuration only
//! through its *multiset of states*. This engine exploits that: it interns
//! states, keeps one integer count per state, and samples each ordered
//! interaction directly from the counts:
//!
//! * initiator state `s` with probability `c_s / n`,
//! * responder state `t` with probability `c_t / (n−1)` after temporarily
//!   removing the initiator from the urn.
//!
//! This is *exactly* the uniformly random scheduler Γ — no approximation —
//! while using `O(#states)` memory instead of `O(n)` and, as a by-product,
//! counting how many distinct states an execution ever visits (the "number
//! of states" column of the paper's Table 1).

use crate::{EngineError, LeaderElection, Protocol, Role, RunOutcome};
use pp_rand::{FenwickSampler, Rng64, Xoshiro256PlusPlus};
use std::collections::HashMap;

/// Exact count-based engine; see the module-level documentation above.
///
/// # Example
///
/// ```
/// use pp_engine::{CountSimulation, Protocol, Role, LeaderElection};
/// use pp_rand::Xoshiro256PlusPlus;
///
/// struct Frat;
/// impl Protocol for Frat {
///     type State = bool;
///     type Output = Role;
///     fn initial_state(&self) -> bool { true }
///     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
///         if *a && *b { (true, false) } else { (*a, *b) }
///     }
///     fn output(&self, s: &bool) -> Role {
///         if *s { Role::Leader } else { Role::Follower }
///     }
/// }
/// impl LeaderElection for Frat { fn monotone_leaders(&self) -> bool { true } }
///
/// let rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let mut sim = CountSimulation::new(Frat, 1_000_000, rng).unwrap();
/// sim.run(100);
/// assert_eq!(sim.population(), 1_000_000);
/// assert!(sim.distinct_states_seen() <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountSimulation<P: Protocol, R = Xoshiro256PlusPlus> {
    protocol: P,
    rng: R,
    ids: HashMap<P::State, u32>,
    states: Vec<P::State>,
    outputs: Vec<P::Output>,
    sampler: FenwickSampler,
    n: u64,
    steps: u64,
}

impl<P: Protocol, R: Rng64> CountSimulation<P, R> {
    /// Creates a count simulation of `n` agents in the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn new(protocol: P, n: usize, rng: R) -> Result<Self, EngineError> {
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        let mut sim = Self {
            protocol,
            rng,
            ids: HashMap::new(),
            states: Vec::new(),
            outputs: Vec::new(),
            sampler: FenwickSampler::new(0),
            n: n as u64,
            steps: 0,
        };
        let init = sim.protocol.initial_state();
        let id = sim.intern(init);
        sim.sampler
            .add(id as usize, n as i64)
            .expect("slot was just created");
        Ok(sim)
    }

    /// Creates a count simulation from explicit state counts.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when counts sum to < 2.
    pub fn from_counts(
        protocol: P,
        counts: impl IntoIterator<Item = (P::State, u64)>,
        rng: R,
    ) -> Result<Self, EngineError> {
        let mut sim = Self {
            protocol,
            rng,
            ids: HashMap::new(),
            states: Vec::new(),
            outputs: Vec::new(),
            sampler: FenwickSampler::new(0),
            n: 0,
            steps: 0,
        };
        for (state, count) in counts {
            if count == 0 {
                continue;
            }
            let id = sim.intern(state);
            sim.sampler
                .add(id as usize, count as i64)
                .expect("slot exists");
            sim.n += count;
        }
        if sim.n < 2 {
            return Err(EngineError::PopulationTooSmall { n: sim.n as usize });
        }
        Ok(sim)
    }

    fn intern(&mut self, state: P::State) -> u32 {
        if let Some(&id) = self.ids.get(&state) {
            return id;
        }
        let id = self.states.len() as u32;
        self.outputs.push(self.protocol.output(&state));
        self.states.push(state.clone());
        self.ids.insert(state, id);
        let slot = self.sampler.push_slot();
        debug_assert_eq!(slot, id as usize);
        id
    }

    /// The population size `n`.
    pub fn population(&self) -> usize {
        self.n as usize
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The execution clock in parallel time (steps / n).
    pub fn parallel_time(&self) -> f64 {
        crate::parallel_time(self.steps, self.n as usize)
    }

    /// The protocol driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of **distinct states the execution has ever visited** —
    /// the empirical "states used" measure reported in Table 1 experiments.
    pub fn distinct_states_seen(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct states currently occupied by at least one agent.
    pub fn support_size(&self) -> usize {
        (0..self.states.len())
            .filter(|&i| self.sampler.weight(i).unwrap_or(0) > 0)
            .count()
    }

    /// The number of agents currently in `state`.
    pub fn count_of(&self, state: &P::State) -> u64 {
        self.ids
            .get(state)
            .and_then(|&id| self.sampler.weight(id as usize).ok())
            .unwrap_or(0)
    }

    /// A snapshot of all (state, count) pairs with positive count.
    pub fn state_counts(&self) -> HashMap<P::State, u64> {
        let mut out = HashMap::new();
        for (i, s) in self.states.iter().enumerate() {
            let w = self.sampler.weight(i).unwrap_or(0);
            if w > 0 {
                out.insert(s.clone(), w);
            }
        }
        out
    }

    /// Executes one interaction; returns `true` if any state count changed.
    pub fn step(&mut self) -> bool {
        // Initiator ∝ counts.
        let s = self
            .sampler
            .sample(&mut self.rng)
            .expect("population is non-empty");
        // Responder from the remaining n-1 agents.
        self.sampler.add(s, -1).expect("slot exists");
        let t = self
            .sampler
            .sample(&mut self.rng)
            .expect("population has >= 2 agents");
        self.sampler.add(s, 1).expect("slot exists");

        let (na, nb) = self.protocol.transition(&self.states[s], &self.states[t]);
        self.steps += 1;

        let a_id = self.intern(na) as usize;
        let b_id = self.intern(nb) as usize;
        let mut changed = false;
        if a_id != s {
            self.sampler.add(s, -1).expect("slot exists");
            self.sampler.add(a_id, 1).expect("slot exists");
            changed = true;
        }
        if b_id != t {
            self.sampler.add(t, -1).expect("slot exists");
            self.sampler.add(b_id, 1).expect("slot exists");
            changed = true;
        }
        changed
    }

    /// Executes exactly `steps` interactions.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }
}

impl<P: LeaderElection, R: Rng64> CountSimulation<P, R> {
    /// Counts the current leaders.
    pub fn leader_count(&self) -> u64 {
        (0..self.states.len())
            .filter(|&i| self.outputs[i] == Role::Leader)
            .map(|i| self.sampler.weight(i).unwrap_or(0))
            .sum()
    }

    /// Runs until exactly one leader remains (see
    /// [`Simulation::run_until_single_leader`](crate::Simulation::run_until_single_leader)
    /// for the stabilization-time caveat).
    pub fn run_until_single_leader(&mut self, max_steps: u64) -> RunOutcome {
        let mut leaders = self.leader_count() as i64;
        if leaders == 1 {
            return RunOutcome {
                steps: self.steps,
                converged: true,
            };
        }
        while self.steps < max_steps {
            // Inline step() but tracking role flow.
            let s = self
                .sampler
                .sample(&mut self.rng)
                .expect("population is non-empty");
            self.sampler.add(s, -1).expect("slot exists");
            let t = self
                .sampler
                .sample(&mut self.rng)
                .expect("population has >= 2 agents");
            self.sampler.add(s, 1).expect("slot exists");
            let before = i64::from(self.outputs[s] == Role::Leader)
                + i64::from(self.outputs[t] == Role::Leader);
            let (na, nb) = self.protocol.transition(&self.states[s], &self.states[t]);
            self.steps += 1;
            let a_id = self.intern(na) as usize;
            let b_id = self.intern(nb) as usize;
            if a_id != s {
                self.sampler.add(s, -1).expect("slot exists");
                self.sampler.add(a_id, 1).expect("slot exists");
            }
            if b_id != t {
                self.sampler.add(t, -1).expect("slot exists");
                self.sampler.add(b_id, 1).expect("slot exists");
            }
            let after = i64::from(self.outputs[a_id] == Role::Leader)
                + i64::from(self.outputs[b_id] == Role::Leader);
            leaders += after - before;
            if leaders == 1 {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
        }
        RunOutcome {
            steps: self.steps,
            converged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulation, UniformScheduler};
    use pp_rand::SeedSequence;

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Frat {
        fn monotone_leaders(&self) -> bool {
            true
        }
    }

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn population_is_conserved() {
        let mut sim = CountSimulation::new(Frat, 100, rng(1)).unwrap();
        for _ in 0..1000 {
            sim.step();
            let total: u64 = sim.state_counts().values().sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn leader_count_decreases_to_one() {
        let mut sim = CountSimulation::new(Frat, 500, rng(2)).unwrap();
        let outcome = sim.run_until_single_leader(100_000_000);
        assert!(outcome.converged);
        assert_eq!(sim.leader_count(), 1);
        assert_eq!(sim.distinct_states_seen(), 2);
        assert_eq!(sim.support_size(), 2);
    }

    #[test]
    fn rejects_tiny_population() {
        assert!(CountSimulation::new(Frat, 1, rng(0)).is_err());
        assert!(CountSimulation::from_counts(Frat, [(true, 1)], rng(0)).is_err());
    }

    #[test]
    fn from_counts_sets_up_configuration() {
        let sim = CountSimulation::from_counts(Frat, [(true, 3), (false, 7)], rng(3)).unwrap();
        assert_eq!(sim.population(), 10);
        assert_eq!(sim.leader_count(), 3);
        assert_eq!(sim.count_of(&true), 3);
        assert_eq!(sim.count_of(&false), 7);
    }

    #[test]
    fn from_counts_ignores_zero_entries() {
        let sim = CountSimulation::from_counts(Frat, [(true, 2), (false, 0)], rng(4)).unwrap();
        assert_eq!(sim.population(), 2);
        assert_eq!(sim.distinct_states_seen(), 1);
    }

    #[test]
    fn agrees_with_agent_engine_distributionally() {
        // Mean convergence time of fratricide over seeds should agree between
        // engines (both simulate the same Markov chain exactly). Theory:
        // E[steps] = sum_{k=2..n} n(n-1)/(k(k-1)) ≈ n^2 * (1 - 1/n).
        let n = 64;
        let seeds = SeedSequence::new(99);
        let runs = 40;
        let mean = |use_count: bool| -> f64 {
            let mut total = 0u64;
            for i in 0..runs {
                let seed = seeds.seed_at(i);
                let steps = if use_count {
                    let mut sim = CountSimulation::new(Frat, n, rng(seed)).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                } else {
                    let sched = UniformScheduler::seed_from_u64(seed);
                    let mut sim = Simulation::new(Frat, n, sched).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                };
                total += steps;
            }
            total as f64 / runs as f64
        };
        let m_agent = mean(false);
        let m_count = mean(true);
        let theory: f64 = (2..=n as u64)
            .map(|k| (n as f64) * (n as f64 - 1.0) / (k as f64 * (k as f64 - 1.0)))
            .sum();
        // Loose agreement (Monte-Carlo with 40 runs): within 25% of theory.
        assert!(
            (m_agent / theory - 1.0).abs() < 0.25,
            "agent engine mean {m_agent} vs theory {theory}"
        );
        assert!(
            (m_count / theory - 1.0).abs() < 0.25,
            "count engine mean {m_count} vs theory {theory}"
        );
    }

    /// A protocol with unbounded state growth to exercise interning.
    #[derive(Debug, Clone, Copy)]
    struct Counter;

    impl Protocol for Counter {
        type State = u32;
        type Output = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn transition(&self, a: &u32, b: &u32) -> (u32, u32) {
            (a + 1, *b)
        }
        fn output(&self, s: &u32) -> u32 {
            *s
        }
    }

    #[test]
    fn interning_tracks_distinct_states() {
        let mut sim = CountSimulation::new(Counter, 10, rng(5)).unwrap();
        sim.run(100);
        assert!(sim.distinct_states_seen() > 1);
        let total: u64 = sim.state_counts().values().sum();
        assert_eq!(total, 10);
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    fn parallel_time_matches_steps() {
        let mut sim = CountSimulation::new(Frat, 50, rng(6)).unwrap();
        sim.run(100);
        assert!((sim.parallel_time() - 2.0).abs() < 1e-12);
    }
}
