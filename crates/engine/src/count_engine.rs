//! The exact count-based simulation engine.
//!
//! Agents in the population-protocol model are anonymous and the interaction
//! graph is complete, so the dynamics depend on the configuration only
//! through its *multiset of states*. This engine exploits that: it interns
//! states, keeps one integer count per state, and samples each ordered
//! interaction directly from the counts:
//!
//! * initiator state `s` with probability `c_s / n`,
//! * responder state `t` with probability `c_t / (n−1)` after virtually
//!   removing the initiator from the urn.
//!
//! This is *exactly* the uniformly random scheduler Γ — no approximation —
//! while using `O(#states)` memory instead of `O(n)` and, as a by-product,
//! counting how many distinct states an execution ever visits (the "number
//! of states" column of the paper's Table 1).
//!
//! # The hash-free hot loop
//!
//! The steady-state [`step`](CountSimulation::step) does **no hashing, no
//! state cloning, and no [`Protocol::transition`] calls**. Three mechanisms
//! combine for that (see [`crate::compiled`] for the first):
//!
//! 1. a [compiled pair-transition cache](crate::compiled): the first
//!    encounter of an ordered state-id pair runs the real transition and
//!    compiles it to a packed `(a, b, leader_delta, is_null)` entry in a
//!    dense table — valid forever because `transition` is contractually
//!    deterministic;
//! 2. [fused pair sampling](pp_rand::FenwickSampler::sample_pair_distinct):
//!    the ordered (initiator, responder) pair is drawn in two tree descents
//!    with zero tree writes, replacing the `add(s, −1)` / draw /
//!    `add(s, +1)` round-trip — run here on the branch-free
//!    [`SumTreeSampler`](pp_rand::SumTreeSampler), which is draw-for-draw
//!    identical to the Fenwick sampler;
//! 3. batched convergence loops:
//!    [`run_until_single_leader`](CountSimulation::run_until_single_leader)
//!    reads the leader-count change of each interaction from the cached
//!    `leader_delta`, so convergence bookkeeping is two integer ops per step
//!    and the step-budget check is hoisted out of the inner loop.
//!
//! The cache can be toggled with
//! [`set_compiled_cache`](CountSimulation::set_compiled_cache); both paths
//! consume the identical RNG stream and produce bit-identical executions
//! (the equivalence is enforced by tests).
//!
//! # The jump scheduler
//!
//! Above the per-step fast path sits the null-skipping **jump scheduler**
//! (see [`crate::jump`]): when engagement probes find that known-null pairs
//! carry at least `1 − 1/8` of the scheduler weight, the batched drivers
//! stop executing null interactions one by one and instead draw the length
//! of each run of consecutive nulls as a single geometric sample, then draw
//! the next real interaction exactly from the non-null pair distribution.
//! This turns e.g. fratricide's `Θ(n²)`-interaction election into `O(n)`
//! executed episodes — population sizes of `2^28`–`2^30` become
//! seconds-scale — while preserving the execution law exactly (equal in
//! law, not bit-identical: the jump path consumes the RNG stream
//! differently). Toggle with
//! [`set_jump_scheduler`](CountSimulation::set_jump_scheduler); inspect
//! with [`jump_engaged`](CountSimulation::jump_engaged) and
//! [`jump_stats`](CountSimulation::jump_stats).

use crate::compiled::{self, PairCache};
use crate::jump::NullLedger;
use crate::{EngineError, LeaderElection, Protocol, Role, RunOutcome, CONVERGENCE_BATCH};
use pp_rand::{Geometric, Rng64, SumTreeSampler, Xoshiro256PlusPlus};
use std::collections::HashMap;

/// The jump scheduler engages when `W_active · JUMP_ENGAGE_FACTOR ≤ W_total`,
/// i.e. when each episode is expected to telescope at least this many raw
/// interactions. Below that ratio the per-step compiled path is cheaper than
/// the episode's `O(K + deg)` active-pair scan.
const JUMP_ENGAGE_FACTOR: u64 = 8;

/// Hysteresis: an engaged scheduler disengages only once
/// `W_active · JUMP_EXIT_FACTOR > W_total`, so the engine does not flap
/// around the engagement boundary.
const JUMP_EXIT_FACTOR: u64 = 4;

/// Throughput counters of the jump scheduler (see
/// [`CountSimulation::jump_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JumpStats {
    /// Jump episodes executed (each ends in one real interaction).
    pub episodes: u64,
    /// Null interactions telescoped past without being executed.
    pub skipped: u64,
}

/// Jump-scheduler state riding along the count engine (see [`crate::jump`]).
#[derive(Debug, Clone)]
struct JumpState {
    /// User toggle ([`CountSimulation::set_jump_scheduler`]); on by default.
    enabled: bool,
    /// Currently executing episodes instead of per-step chunks.
    engaged: bool,
    /// Test hook: pinned engaged regardless of the engage/exit thresholds.
    forced: bool,
    /// The known-null pair set with scheduler weights.
    ledger: NullLedger,
    /// Step count at which the next engagement probe runs (disengaged mode).
    probe_at: u64,
    stats: JumpStats,
}

impl JumpState {
    fn new() -> Self {
        Self {
            enabled: true,
            engaged: false,
            forced: false,
            ledger: NullLedger::new(),
            probe_at: 0,
            stats: JumpStats::default(),
        }
    }
}

/// Exact count-based engine; see the module-level documentation above.
///
/// # Example
///
/// ```
/// use pp_engine::{CountSimulation, Protocol, Role, LeaderElection};
/// use pp_rand::Xoshiro256PlusPlus;
///
/// struct Frat;
/// impl Protocol for Frat {
///     type State = bool;
///     type Output = Role;
///     fn initial_state(&self) -> bool { true }
///     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
///         if *a && *b { (true, false) } else { (*a, *b) }
///     }
///     fn output(&self, s: &bool) -> Role {
///         if *s { Role::Leader } else { Role::Follower }
///     }
/// }
/// impl LeaderElection for Frat { fn monotone_leaders(&self) -> bool { true } }
///
/// let rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let mut sim = CountSimulation::new(Frat, 1_000_000, rng).unwrap();
/// sim.run(100);
/// assert_eq!(sim.population(), 1_000_000);
/// assert!(sim.distinct_states_seen() <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountSimulation<P: Protocol, R = Xoshiro256PlusPlus> {
    protocol: P,
    rng: R,
    ids: HashMap<P::State, u32>,
    states: Vec<P::State>,
    outputs: Vec<P::Output>,
    /// 1 for states whose output is the primed leader output, else 0.
    /// All-zero until [`prime_role_tracking`](Self::prime_role_tracking).
    leader_flags: Vec<i8>,
    /// The output value counted as "leader"; `None` until role tracking is
    /// primed (which also backfills `leader_flags` and cached deltas).
    leader_output: Option<P::Output>,
    /// Number of states with a positive count (`support_size` in O(1)).
    support: usize,
    sampler: SumTreeSampler,
    pairs: PairCache,
    jump: JumpState,
    n: u64,
    steps: u64,
}

impl<P: Protocol, R: Rng64> CountSimulation<P, R> {
    /// Creates a count simulation of `n` agents in the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn new(protocol: P, n: usize, rng: R) -> Result<Self, EngineError> {
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        let mut sim = Self::empty(protocol, rng);
        let init = sim.protocol.initial_state();
        let id = sim.intern(init) as usize;
        sim.add_agents(id, n as u64);
        Ok(sim)
    }

    /// Creates a count simulation from explicit state counts.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when counts sum to < 2.
    pub fn from_counts(
        protocol: P,
        counts: impl IntoIterator<Item = (P::State, u64)>,
        rng: R,
    ) -> Result<Self, EngineError> {
        let mut sim = Self::empty(protocol, rng);
        for (state, count) in counts {
            if count == 0 {
                continue;
            }
            let id = sim.intern(state) as usize;
            sim.add_agents(id, count);
        }
        if sim.n < 2 {
            return Err(EngineError::PopulationTooSmall { n: sim.n as usize });
        }
        Ok(sim)
    }

    fn empty(protocol: P, rng: R) -> Self {
        Self {
            protocol,
            rng,
            ids: HashMap::new(),
            states: Vec::new(),
            outputs: Vec::new(),
            leader_flags: Vec::new(),
            leader_output: None,
            support: 0,
            sampler: SumTreeSampler::new(0),
            pairs: PairCache::new(compiled::MAX_COMPILED_STATES),
            jump: JumpState::new(),
            n: 0,
            steps: 0,
        }
    }

    /// Adds `count` agents to slot `id` (construction-time only).
    fn add_agents(&mut self, id: usize, count: u64) {
        if count > 0 && self.sampler.weights()[id] == 0 {
            self.support += 1;
        }
        self.sampler.add(id, count as i64).expect("slot exists");
        self.n += count;
    }

    fn intern(&mut self, state: P::State) -> u32 {
        if let Some(&id) = self.ids.get(&state) {
            return id;
        }
        let id = self.states.len() as u32;
        let output = self.protocol.output(&state);
        self.leader_flags
            .push(i8::from(self.leader_output.as_ref() == Some(&output)));
        self.outputs.push(output);
        self.states.push(state.clone());
        self.ids.insert(state, id);
        let slot = self.sampler.push_slot();
        debug_assert_eq!(slot, id as usize);
        self.pairs.ensure_states(self.states.len());
        id
    }

    /// Enables or disables the compiled pair-transition cache.
    ///
    /// Both settings execute the **same** Markov chain with the **same** RNG
    /// stream — the cache consumes no randomness — so executions are
    /// bit-identical either way; disabling only removes the fast path (every
    /// step then hashes, clones, and calls [`Protocol::transition`]). The
    /// cache also disables itself automatically once the protocol has
    /// interned more than [`compiled::MAX_COMPILED_STATES`] states, since the
    /// dense pair table grows quadratically in the states seen.
    pub fn set_compiled_cache(&mut self, enabled: bool) {
        if enabled {
            self.pairs.reactivate();
            self.pairs.ensure_states(self.states.len());
            self.reseed_jump_ledger();
        } else {
            self.pairs.deactivate();
            // The jump scheduler reads null knowledge from compiled entries;
            // without the cache it has nothing to telescope, and staying off
            // is what keeps the uncached path bit-identical to the per-step
            // reference execution.
            self.jump.engaged = false;
            self.jump.ledger.clear();
        }
    }

    /// Enables or disables the **jump scheduler** (on by default): the
    /// null-skipping fast path that replaces each run of consecutive null
    /// interactions by one geometric jump plus one exact draw from the
    /// non-null pair distribution (see [`crate::jump`] for the argument and
    /// the data structure).
    ///
    /// The scheduler changes no distribution — executions are equal in law,
    /// including the exact step counts at which the configuration changes —
    /// but it consumes the RNG stream differently, so runs with the
    /// scheduler on and off are not bit-identical (the equivalence suite
    /// pins the law instead). It engages itself only when the compiled
    /// cache is active and probes show null pairs carrying at least
    /// `1 − 1/8` of the scheduler weight, and disengages under hysteresis,
    /// so protocols without a null-dominated regime never pay for it.
    /// Disabling it (or disabling the compiled cache, which it requires)
    /// restores the bit-exact per-step execution.
    ///
    /// Populations are capped at `2^32 − 1` agents: the scheduler's exact
    /// integer pair arithmetic needs `n(n−1)` to fit a `u64`, so beyond the
    /// cap probes simply never engage and execution stays per-step.
    ///
    /// Affects the batched drivers ([`run`](Self::run),
    /// [`run_batched`](Self::run_batched),
    /// [`run_until_single_leader`](Self::run_until_single_leader));
    /// single-[`step`](Self::step) calls always execute per-step.
    pub fn set_jump_scheduler(&mut self, enabled: bool) {
        self.jump.enabled = enabled;
        self.jump.engaged = false;
        self.jump.forced = false;
        self.jump.ledger.clear();
        if enabled {
            self.reseed_jump_ledger();
            self.jump.probe_at = self.steps;
        }
    }

    /// Whether the jump scheduler is enabled (not necessarily engaged).
    pub fn jump_scheduler_enabled(&self) -> bool {
        self.jump.enabled
    }

    /// Whether the jump scheduler is currently engaged (probes found a
    /// null-dominated configuration and episodes are telescoping).
    pub fn jump_engaged(&self) -> bool {
        self.jump.engaged
    }

    /// Episode/skip counters of the jump scheduler.
    pub fn jump_stats(&self) -> JumpStats {
        self.jump.stats
    }

    /// Test hook: engages the jump scheduler immediately and pins it on,
    /// bypassing the engage/exit thresholds. The scheduler still requires an
    /// active compiled cache.
    ///
    /// # Panics
    ///
    /// Panics if the compiled cache or the scheduler is disabled, or if the
    /// population exceeds the scheduler's `2^32 − 1` cap (see
    /// [`set_jump_scheduler`](Self::set_jump_scheduler)).
    #[doc(hidden)]
    pub fn force_jump_mode(&mut self) {
        assert!(
            self.jump.enabled && self.pairs.is_active(),
            "jump scheduler requires the compiled cache and the enabled toggle"
        );
        assert!(
            self.n <= u64::from(u32::MAX),
            "jump scheduler requires n(n-1) to fit u64"
        );
        // Unconditional rebuild: the ledger may be stale without being dirty
        // (per-step chunks since the last probe change counts but register
        // no new nulls), and episodes trust its weights exactly.
        self.jump.ledger.rebuild(self.sampler.weights());
        self.jump.engaged = true;
        self.jump.forced = true;
    }

    /// Test hook: executes one per-step interaction (never jumping) and
    /// returns `(initiator_id, responder_id, changed)` — the drawn ordered
    /// pair of interned state ids plus the step's non-null flag. The
    /// deterministic replay suite uses this to reconstruct executions
    /// pair-for-pair.
    #[doc(hidden)]
    pub fn step_traced(&mut self) -> (usize, usize, bool) {
        let Ok((s, t)) = self.sampler.sample_pair_distinct(&mut self.rng) else {
            unreachable!("population has >= 2 agents");
        };
        self.steps += 1;
        if self.jump.engaged {
            // Same staleness hazard as in `step`.
            self.jump.ledger.mark_dirty();
        }
        let (changed, _) = self.apply_pair(s, t);
        (s, t, changed)
    }

    /// Test hook: per-state agent counts indexed by interned state id (the
    /// id order used by the jump scheduler's active-pair distribution).
    #[doc(hidden)]
    pub fn raw_counts(&self) -> &[u64] {
        self.sampler.weights()
    }

    /// Re-seeds the ledger's known-null set from already-compiled entries
    /// (after the scheduler or the cache is re-enabled mid-run).
    fn reseed_jump_ledger(&mut self) {
        if !self.jump.enabled || !self.pairs.is_active() {
            return;
        }
        let ledger = &mut self.jump.ledger;
        self.pairs.for_each_filled(|s, t, entry| {
            if compiled::unpack(entry).3 {
                ledger.register(s, t);
            }
        });
    }

    /// The compiled pair-transition cache (inspection only): activity,
    /// compiled-pair count, and table footprint.
    pub fn pair_cache(&self) -> &PairCache {
        &self.pairs
    }

    /// The population size `n`.
    pub fn population(&self) -> usize {
        self.n as usize
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The execution clock in parallel time (steps / n).
    pub fn parallel_time(&self) -> f64 {
        crate::parallel_time(self.steps, self.n as usize)
    }

    /// The protocol driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of **distinct states the execution has ever visited** —
    /// the empirical "states used" measure reported in Table 1 experiments.
    pub fn distinct_states_seen(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct states currently occupied by at least one agent.
    ///
    /// Maintained incrementally; this is `O(1)`.
    pub fn support_size(&self) -> usize {
        self.support
    }

    /// The number of agents currently in `state`.
    pub fn count_of(&self, state: &P::State) -> u64 {
        self.ids
            .get(state)
            .map(|&id| self.sampler.weights()[id as usize])
            .unwrap_or(0)
    }

    /// A snapshot of all (state, count) pairs with positive count.
    pub fn state_counts(&self) -> HashMap<P::State, u64> {
        let mut out = HashMap::with_capacity(self.support);
        for (i, s) in self.states.iter().enumerate() {
            let w = self.sampler.weights()[i];
            if w > 0 {
                out.insert(s.clone(), w);
            }
        }
        out
    }

    /// Moves one agent from state slot `from` to state slot `to` (free
    /// no-op when `from == to`), folding occupancy changes into the
    /// incremental support count.
    ///
    /// Interned ids are always in range, so the error arm is unreachable;
    /// it is handled with a debug assertion plus silent no-op rather than a
    /// panic so the hot loop has no unwind edges (panic paths would force
    /// every cached field back to memory at each call).
    #[inline]
    fn move_agent(&mut self, from: usize, to: usize) {
        let Ok(effect) = self.sampler.transfer(from, to) else {
            debug_assert!(false, "interned slots {from}/{to} exist");
            return;
        };
        self.support = self.support + usize::from(effect.populated) - usize::from(effect.emptied);
    }

    /// Compiles the transition of the ordered pair `(s, t)`: runs the real
    /// [`Protocol::transition`], interns the successors, and (when the cache
    /// is active — interning can deactivate it) stores the packed entry for
    /// every later encounter.
    ///
    /// This is the **only** place the protocol's transition is evaluated;
    /// when the cache is disabled it simply runs once per step.
    ///
    /// Marked cold and never-inlined: with the cache active this is off the
    /// steady-state path, and keeping its hashing/interning machinery out
    /// of the hot loop lets the register allocator keep the RNG and tree
    /// state in registers across iterations.
    #[cold]
    #[inline(never)]
    fn compile_pair(&mut self, s: usize, t: usize) -> (usize, usize, i8, bool) {
        let (na, nb) = self.protocol.transition(&self.states[s], &self.states[t]);
        let a = self.intern(na) as usize;
        let b = self.intern(nb) as usize;
        let delta = self.leader_flags[a] + self.leader_flags[b]
            - self.leader_flags[s]
            - self.leader_flags[t];
        let null = a == s && b == t;
        if self.pairs.is_active() {
            // An active cache bounds ids by MAX_COMPILED_STATES, so they
            // always fit the packed entry's id fields.
            self.pairs.set(s, t, compiled::pack(a, b, delta, null));
            if null && self.jump.enabled {
                // Feed the jump scheduler's known-null set as pairs compile;
                // weights stay stale (dirty) until the next probe/episode.
                self.jump.ledger.register(s, t);
            }
        } else if self.jump.engaged || !self.jump.ledger.is_empty() {
            // Interning just deactivated the cache: without compiled entries
            // the scheduler has no null knowledge to extend, so it shuts
            // down and execution continues on the uncached per-step path.
            self.jump.engaged = false;
            self.jump.ledger.clear();
        }
        (a, b, delta, null)
    }

    /// Applies the interaction of the ordered pair `(s, t)` and returns
    /// `(changed, leader_delta)`.
    #[inline]
    fn apply_pair(&mut self, s: usize, t: usize) -> (bool, i8) {
        let entry = self.pairs.get(s, t);
        let (a, b, delta, null) = if entry == compiled::EMPTY {
            self.compile_pair(s, t)
        } else {
            compiled::unpack(entry)
        };
        // Self-transfers fall out of the lockstep walk for free, so no
        // branching on which side changed.
        self.move_agent(s, a);
        self.move_agent(t, b);
        (!null, delta)
    }

    /// Executes one interaction; returns `true` if any state count changed.
    ///
    /// The population invariant (`n ≥ 2`, enforced at construction) makes
    /// the sampling error unreachable; see [`move_agent`](Self::move_agent)
    /// for why it is absorbed without a panic edge.
    #[inline]
    pub fn step(&mut self) -> bool {
        let Ok((s, t)) = self.sampler.sample_pair_distinct(&mut self.rng) else {
            debug_assert!(false, "population has >= 2 agents");
            return false;
        };
        self.steps += 1;
        // Per-step execution mutates counts behind the jump scheduler's
        // back; a stale ledger would make the next episode sample against
        // wrong weights, so force a rebuild at its next sync.
        if self.jump.engaged {
            self.jump.ledger.mark_dirty();
        }
        self.apply_pair(s, t).0
    }

    /// Executes up to `max` interactions entirely on the compiled fast
    /// path, then handles at most one cache miss, returning the number of
    /// interactions executed (0 only if `max == 0`).
    ///
    /// The inner loop holds every hot field through *split borrows* and
    /// calls nothing that takes `&mut self`: a `&mut self` callee (such as
    /// the interning [`compile_pair`](Self::compile_pair)) could touch any
    /// field, which would force the optimizer to spill the RNG words, step
    /// counter, and support count back to memory on every iteration.
    /// Keeping the miss path outside the loop is what lets them live in
    /// registers for the whole chunk. A miss still consumes its RNG draw,
    /// so the drawn pair is carried out of the loop and completed through
    /// the compile path before returning.
    fn run_chunk(&mut self, max: u64) -> u64 {
        let mut pending = None;
        let mut done = 0u64;
        {
            let Self {
                sampler,
                rng,
                pairs,
                support,
                ..
            } = self;
            let mut sup = *support;
            while done < max {
                let Ok((s, t)) = sampler.sample_pair_distinct(rng) else {
                    debug_assert!(false, "population has >= 2 agents");
                    break;
                };
                let entry = pairs.get(s, t);
                if entry == compiled::EMPTY {
                    pending = Some((s, t));
                    break;
                }
                let (a, b, _, _) = compiled::unpack(entry);
                let (Ok(e1), Ok(e2)) = (sampler.transfer(s, a), sampler.transfer(t, b)) else {
                    debug_assert!(false, "interned slots exist");
                    break;
                };
                sup = sup + usize::from(e1.populated) + usize::from(e2.populated)
                    - usize::from(e1.emptied)
                    - usize::from(e2.emptied);
                done += 1;
            }
            *support = sup;
        }
        self.steps += done;
        if let Some((s, t)) = pending {
            self.steps += 1;
            let (a, b, _, _) = self.compile_pair(s, t);
            self.move_agent(s, a);
            self.move_agent(t, b);
            done += 1;
        }
        done
    }

    /// The engagement-probe interval while the jump scheduler is
    /// disengaged: short enough to catch small populations entering their
    /// null-dominated phase within a run, and scaled with the ledger size so
    /// the `O(m)` rebuild each probe performs stays a vanishing fraction of
    /// the per-step work between probes.
    fn jump_probe_interval(&self) -> u64 {
        self.n
            .min(CONVERGENCE_BATCH)
            .max(4 * self.jump.ledger.len() as u64)
    }

    /// Engagement probe, run at batch boundaries of the batched drivers:
    /// rebuilds the ledger's weights against the current counts and engages
    /// the jump scheduler when known-null pairs carry at least
    /// `1 − 1/JUMP_ENGAGE_FACTOR` of the total scheduler weight.
    fn maybe_probe_jump(&mut self) {
        if self.jump.engaged || self.steps < self.jump.probe_at {
            return;
        }
        self.jump.probe_at = self.steps + self.jump_probe_interval();
        if !self.jump.enabled || !self.pairs.is_active() || self.jump.ledger.is_empty() {
            return;
        }
        if self.n > u64::from(u32::MAX) {
            // W_total = n(n−1) must fit u64 for exact integer pair sampling.
            return;
        }
        self.jump.ledger.rebuild(self.sampler.weights());
        let w_total = self.n * (self.n - 1);
        let w_active = w_total - self.jump.ledger.w_null();
        if w_active.saturating_mul(JUMP_ENGAGE_FACTOR) <= w_total {
            self.jump.engaged = true;
        }
    }

    /// Executes one jump episode against the current configuration (see
    /// [`crate::jump`]): telescopes the geometric run of known-null draws in
    /// `O(1)`, then draws one interaction from the active-candidate
    /// distribution and executes it. Consumes at most `max` interactions
    /// (`max > 0` required); returns `(consumed, leader_delta)`, where the
    /// delta is the executed interaction's cached leader-count change — or 0
    /// when the budget ran out inside the null run, which leaves the
    /// configuration untouched by construction.
    fn jump_episode(&mut self, max: u64) -> (u64, i8) {
        debug_assert!(max > 0);
        self.jump.ledger.sync(self.sampler.weights());
        let w_total = self.n * (self.n - 1);
        let w_null = self.jump.ledger.w_null();
        let w_active = w_total - w_null;
        if w_active == 0 {
            // Every realizable ordered pair is known-null: the configuration
            // is silent and the remaining budget telescopes away whole.
            self.steps += max;
            self.jump.stats.skipped += max;
            return (max, 0);
        }
        let skip = if w_null == 0 {
            0
        } else {
            let p = w_active as f64 / w_total as f64;
            Geometric::new(p)
                .expect("w_active in (0, w_total] gives p in (0, 1]")
                .sample(&mut self.rng)
        };
        if skip >= max {
            self.steps += max;
            self.jump.stats.skipped += max;
            return (max, 0);
        }
        self.jump.stats.skipped += skip;
        self.jump.stats.episodes += 1;
        self.steps += skip + 1;
        let u = self.rng.below(w_active);
        let (s, t) = self
            .jump
            .ledger
            .sample_active(self.sampler.weights(), self.n, u);
        let entry = self.pairs.get(s, t);
        let (a, b, delta, null) = if entry == compiled::EMPTY {
            self.compile_pair(s, t)
        } else {
            compiled::unpack(entry)
        };
        self.move_agent(s, a);
        self.move_agent(t, b);
        // Resync the null weights of pairs touching the states whose counts
        // changed (idempotent per state, so shared pairs need no dedup). A
        // dirty ledger — compile_pair discovered a fresh null — rebuilds on
        // the next episode instead; and if compile_pair just deactivated the
        // cache the ledger is empty and these are no-ops.
        if !null && !self.jump.ledger.is_dirty() {
            let Self { jump, sampler, .. } = self;
            let counts = sampler.weights();
            jump.ledger.on_count_change(s, counts);
            jump.ledger.on_count_change(a, counts);
            jump.ledger.on_count_change(t, counts);
            jump.ledger.on_count_change(b, counts);
        }
        if !self.jump.forced && self.jump.engaged {
            let w_active_now = w_total - self.jump.ledger.w_null();
            if w_active_now.saturating_mul(JUMP_EXIT_FACTOR) > w_total {
                self.jump.engaged = false;
                self.jump.probe_at = self.steps + self.jump_probe_interval();
            }
        }
        (skip + 1, delta)
    }

    /// Executes exactly `steps` interactions.
    ///
    /// Rides the jump scheduler whenever it is engaged (see
    /// [`set_jump_scheduler`](Self::set_jump_scheduler)); otherwise runs the
    /// compiled per-step chunks, probing for engagement at batch boundaries.
    pub fn run(&mut self, steps: u64) {
        let mut remaining = steps;
        while remaining > 0 {
            if self.jump.engaged {
                let (consumed, _) = self.jump_episode(remaining);
                remaining -= consumed;
                continue;
            }
            let window = remaining
                .min(self.jump.probe_at.saturating_sub(self.steps))
                .max(1);
            let mut left = window;
            while left > 0 {
                let did = self.run_chunk(left);
                if did == 0 {
                    debug_assert!(false, "run_chunk always makes progress");
                    return;
                }
                left -= did;
            }
            remaining -= window;
            self.maybe_probe_jump();
        }
    }

    /// Runs until `predicate` holds (checked every `batch` steps, starting
    /// immediately) or `max_steps` total interactions have executed.
    ///
    /// The predicate is evaluated only at batch boundaries, so per-step work
    /// stays on the hash-free fast path; choose `batch` against the
    /// resolution the convergence condition needs (e.g. `n/4` steps for a
    /// parallel-time-scale condition).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn run_batched<F>(&mut self, batch: u64, max_steps: u64, mut predicate: F) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        assert!(batch > 0, "batch must be positive");
        loop {
            if predicate(self) {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            if self.steps >= max_steps {
                return RunOutcome {
                    steps: self.steps,
                    converged: false,
                };
            }
            let burst = batch.min(max_steps - self.steps);
            self.run(burst);
        }
    }
}

impl<P: LeaderElection, R: Rng64> CountSimulation<P, R> {
    /// Counts the current leaders in `O(#states)`.
    pub fn leader_count(&self) -> u64 {
        (0..self.states.len())
            .filter(|&i| self.outputs[i] == Role::Leader)
            .map(|i| self.sampler.weights()[i])
            .sum()
    }

    /// Primes per-state leader flags (and retrofits the leader deltas of any
    /// already-compiled pairs) so convergence loops can read each step's
    /// leader-count change straight from the cache.
    fn prime_role_tracking(&mut self) {
        if self.leader_output.is_some() {
            return;
        }
        self.leader_output = Some(Role::Leader);
        for i in 0..self.states.len() {
            self.leader_flags[i] = i8::from(self.outputs[i] == Role::Leader);
        }
        let flags = &self.leader_flags;
        self.pairs.for_each_filled_mut(|s, t, entry| {
            let (a, b, _, null) = compiled::unpack(*entry);
            let delta = flags[a] + flags[b] - flags[s] - flags[t];
            *entry = compiled::pack(a, b, delta, null);
        });
    }

    /// Like [`run_chunk`](Self::run_chunk), but additionally folds each
    /// interaction's cached `leader_delta` into `leaders`, stopping the
    /// moment the count hits exactly 1. Returns `true` on that hit, with
    /// [`steps`](Self::steps) exact.
    fn leader_chunk(&mut self, max: u64, leaders: &mut i64) -> bool {
        let mut pending = None;
        let mut done = 0u64;
        let mut count = *leaders;
        let mut hit = false;
        {
            let Self {
                sampler,
                rng,
                pairs,
                support,
                ..
            } = self;
            let mut sup = *support;
            while done < max {
                let Ok((s, t)) = sampler.sample_pair_distinct(rng) else {
                    debug_assert!(false, "population has >= 2 agents");
                    break;
                };
                let entry = pairs.get(s, t);
                if entry == compiled::EMPTY {
                    pending = Some((s, t));
                    break;
                }
                let (a, b, delta, _) = compiled::unpack(entry);
                let (Ok(e1), Ok(e2)) = (sampler.transfer(s, a), sampler.transfer(t, b)) else {
                    debug_assert!(false, "interned slots exist");
                    break;
                };
                sup = sup + usize::from(e1.populated) + usize::from(e2.populated)
                    - usize::from(e1.emptied)
                    - usize::from(e2.emptied);
                done += 1;
                if delta != 0 {
                    count += i64::from(delta);
                    if count == 1 {
                        hit = true;
                        break;
                    }
                }
            }
            *support = sup;
        }
        self.steps += done;
        if let Some((s, t)) = pending {
            if !hit {
                self.steps += 1;
                let (a, b, delta, _) = self.compile_pair(s, t);
                self.move_agent(s, a);
                self.move_agent(t, b);
                if delta != 0 {
                    count += i64::from(delta);
                    hit = count == 1;
                }
            }
        }
        *leaders = count;
        hit
    }

    /// Runs until exactly one leader remains (see
    /// [`Simulation::run_until_single_leader`](crate::Simulation::run_until_single_leader)
    /// for the stabilization-time caveat).
    ///
    /// The leader count is maintained from the cached `leader_delta` of each
    /// compiled pair — two integer ops per step — and the step-budget check
    /// runs once per batch, not once per step. The returned step count is
    /// still exact: the count is checked at every step that changes it.
    pub fn run_until_single_leader(&mut self, max_steps: u64) -> RunOutcome {
        self.prime_role_tracking();
        let mut leaders = self.leader_count() as i64;
        loop {
            if leaders == 1 {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            if self.steps >= max_steps {
                return RunOutcome {
                    steps: self.steps,
                    converged: false,
                };
            }
            if self.jump.engaged {
                // Null interactions cannot change the leader count, so the
                // telescoped run needs no bookkeeping; the episode's one
                // executed interaction reports its cached delta and the step
                // counter stays exact at the moment the count hits 1.
                let (_, delta) = self.jump_episode(max_steps - self.steps);
                leaders += i64::from(delta);
                continue;
            }
            let burst = CONVERGENCE_BATCH
                .min(max_steps - self.steps)
                .min(self.jump.probe_at.saturating_sub(self.steps))
                .max(1);
            if self.leader_chunk(burst, &mut leaders) {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            // Sampled invariant check: once per batch, not per step.
            debug_assert_eq!(leaders, self.leader_count() as i64);
            self.maybe_probe_jump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulation, UniformScheduler};
    use pp_rand::SeedSequence;

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Frat {
        fn monotone_leaders(&self) -> bool {
            true
        }
    }

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn population_is_conserved() {
        let mut sim = CountSimulation::new(Frat, 100, rng(1)).unwrap();
        for _ in 0..1000 {
            sim.step();
            let total: u64 = sim.state_counts().values().sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn leader_count_decreases_to_one() {
        let mut sim = CountSimulation::new(Frat, 500, rng(2)).unwrap();
        let outcome = sim.run_until_single_leader(100_000_000);
        assert!(outcome.converged);
        assert_eq!(sim.leader_count(), 1);
        assert_eq!(sim.distinct_states_seen(), 2);
        assert_eq!(sim.support_size(), 2);
    }

    #[test]
    fn rejects_tiny_population() {
        assert!(CountSimulation::new(Frat, 1, rng(0)).is_err());
        assert!(CountSimulation::from_counts(Frat, [(true, 1)], rng(0)).is_err());
    }

    #[test]
    fn from_counts_sets_up_configuration() {
        let sim = CountSimulation::from_counts(Frat, [(true, 3), (false, 7)], rng(3)).unwrap();
        assert_eq!(sim.population(), 10);
        assert_eq!(sim.leader_count(), 3);
        assert_eq!(sim.count_of(&true), 3);
        assert_eq!(sim.count_of(&false), 7);
        assert_eq!(sim.support_size(), 2);
    }

    #[test]
    fn from_counts_ignores_zero_entries() {
        let sim = CountSimulation::from_counts(Frat, [(true, 2), (false, 0)], rng(4)).unwrap();
        assert_eq!(sim.population(), 2);
        assert_eq!(sim.distinct_states_seen(), 1);
        assert_eq!(sim.support_size(), 1);
    }

    #[test]
    fn agrees_with_agent_engine_distributionally() {
        // Mean convergence time of fratricide over seeds should agree between
        // engines (both simulate the same Markov chain exactly). Theory:
        // E[steps] = sum_{k=2..n} n(n-1)/(k(k-1)) ≈ n^2 * (1 - 1/n).
        let n = 64;
        let seeds = SeedSequence::new(99);
        let runs = 40;
        let mean = |use_count: bool| -> f64 {
            let mut total = 0u64;
            for i in 0..runs {
                let seed = seeds.seed_at(i);
                let steps = if use_count {
                    let mut sim = CountSimulation::new(Frat, n, rng(seed)).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                } else {
                    let sched = UniformScheduler::seed_from_u64(seed);
                    let mut sim = Simulation::new(Frat, n, sched).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                };
                total += steps;
            }
            total as f64 / runs as f64
        };
        let m_agent = mean(false);
        let m_count = mean(true);
        let theory: f64 = (2..=n as u64)
            .map(|k| (n as f64) * (n as f64 - 1.0) / (k as f64 * (k as f64 - 1.0)))
            .sum();
        // Loose agreement (Monte-Carlo with 40 runs): within 25% of theory.
        assert!(
            (m_agent / theory - 1.0).abs() < 0.25,
            "agent engine mean {m_agent} vs theory {theory}"
        );
        assert!(
            (m_count / theory - 1.0).abs() < 0.25,
            "count engine mean {m_count} vs theory {theory}"
        );
    }

    /// A protocol with unbounded state growth to exercise interning.
    #[derive(Debug, Clone, Copy)]
    struct Counter;

    impl Protocol for Counter {
        type State = u32;
        type Output = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn transition(&self, a: &u32, b: &u32) -> (u32, u32) {
            (a + 1, *b)
        }
        fn output(&self, s: &u32) -> u32 {
            *s
        }
    }

    #[test]
    fn interning_tracks_distinct_states() {
        let mut sim = CountSimulation::new(Counter, 10, rng(5)).unwrap();
        sim.run(100);
        assert!(sim.distinct_states_seen() > 1);
        let total: u64 = sim.state_counts().values().sum();
        assert_eq!(total, 10);
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    fn parallel_time_matches_steps() {
        let mut sim = CountSimulation::new(Frat, 50, rng(6)).unwrap();
        sim.run(100);
        assert!((sim.parallel_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_support_matches_snapshot() {
        let mut sim = CountSimulation::new(Counter, 16, rng(7)).unwrap();
        for _ in 0..500 {
            sim.step();
            assert_eq!(sim.support_size(), sim.state_counts().len());
        }
    }

    #[test]
    fn cached_and_uncached_runs_are_bit_identical() {
        // The compiled cache consumes no randomness, so the cached and
        // uncached engines must agree on every count at every single step.
        for seed in 0..4 {
            let mut cached = CountSimulation::new(Frat, 64, rng(seed)).unwrap();
            let mut reference = CountSimulation::new(Frat, 64, rng(seed)).unwrap();
            reference.set_compiled_cache(false);
            assert!(cached.pair_cache().is_active());
            assert!(!reference.pair_cache().is_active());
            for _ in 0..2000 {
                assert_eq!(cached.step(), reference.step());
                assert_eq!(cached.state_counts(), reference.state_counts());
                assert_eq!(cached.support_size(), reference.support_size());
            }
        }
    }

    #[test]
    fn cached_and_uncached_convergence_steps_agree() {
        // Bit-exact comparison, so the jump scheduler (which consumes the
        // RNG stream differently) stays off on the cached side; its own
        // equivalence-in-law suite lives in tests/jump_equivalence.rs.
        let mut cached = CountSimulation::new(Frat, 200, rng(11)).unwrap();
        cached.set_jump_scheduler(false);
        let mut reference = CountSimulation::new(Frat, 200, rng(11)).unwrap();
        reference.set_compiled_cache(false);
        let a = cached.run_until_single_leader(u64::MAX);
        let b = reference.run_until_single_leader(u64::MAX);
        assert_eq!(a, b);
        assert_eq!(cached.leader_count(), 1);
    }

    #[test]
    fn cache_deactivates_on_state_explosion_and_stays_exact() {
        // Counter interns a fresh state on (almost) every interaction, so a
        // long run blows past MAX_COMPILED_STATES and must fall back — with
        // no behavioral difference vs. an uncached twin.
        // With n = 2 each step increments one of two agents, so the max
        // value (= distinct states − 1) is at least steps/2: the state
        // count provably exceeds the cap.
        let mut cached = CountSimulation::new(Counter, 2, rng(12)).unwrap();
        let mut reference = CountSimulation::new(Counter, 2, rng(12)).unwrap();
        reference.set_compiled_cache(false);
        let steps = (compiled::MAX_COMPILED_STATES as u64 + 64) * 2;
        for _ in 0..steps {
            assert_eq!(cached.step(), reference.step());
        }
        assert!(!cached.pair_cache().is_active());
        assert_eq!(cached.state_counts(), reference.state_counts());
    }

    #[test]
    fn run_batched_checks_only_at_batch_boundaries() {
        let mut sim = CountSimulation::new(Frat, 100, rng(13)).unwrap();
        let outcome = sim.run_batched(64, 1_000_000, |s| s.steps() >= 100);
        assert!(outcome.converged);
        // 100 is not a multiple of the batch: first boundary at/after 100.
        assert_eq!(outcome.steps, 128);
        let outcome = sim.run_batched(64, 200, |_| false);
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 200);
    }

    #[test]
    fn run_batched_checks_predicate_before_running() {
        let mut sim = CountSimulation::new(Frat, 10, rng(14)).unwrap();
        let outcome = sim.run_batched(100, 1_000, |_| true);
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
    }

    #[test]
    fn pair_cache_compiles_pairs_lazily() {
        let mut sim = CountSimulation::new(Frat, 32, rng(15)).unwrap();
        assert_eq!(sim.pair_cache().compiled_pairs(), 0);
        sim.run(100);
        // Fratricide over {L, F} has at most 4 ordered pairs.
        assert!(sim.pair_cache().compiled_pairs() <= 4);
        assert!(sim.pair_cache().compiled_pairs() >= 1);
        assert!(sim.pair_cache().table_bytes() > 0);
    }
}
