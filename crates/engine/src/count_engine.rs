//! The exact count-based simulation engine.
//!
//! Agents in the population-protocol model are anonymous and the interaction
//! graph is complete, so the dynamics depend on the configuration only
//! through its *multiset of states*. This engine exploits that: it interns
//! states, keeps one integer count per state, and samples each ordered
//! interaction directly from the counts:
//!
//! * initiator state `s` with probability `c_s / n`,
//! * responder state `t` with probability `c_t / (n−1)` after virtually
//!   removing the initiator from the urn.
//!
//! This is *exactly* the uniformly random scheduler Γ — no approximation —
//! while using `O(#states)` memory instead of `O(n)` and, as a by-product,
//! counting how many distinct states an execution ever visits (the "number
//! of states" column of the paper's Table 1).
//!
//! # The hash-free hot loop
//!
//! The steady-state [`step`](CountSimulation::step) does **no hashing, no
//! state cloning, and no [`Protocol::transition`] calls**. Three mechanisms
//! combine for that (see [`crate::compiled`] for the first):
//!
//! 1. a [compiled pair-transition cache](crate::compiled): the first
//!    encounter of an ordered state-id pair runs the real transition and
//!    compiles it to a packed `(a, b, leader_delta, is_null)` entry in a
//!    dense table — valid forever because `transition` is contractually
//!    deterministic;
//! 2. [fused pair sampling](pp_rand::FenwickSampler::sample_pair_distinct):
//!    the ordered (initiator, responder) pair is drawn in two tree descents
//!    with zero tree writes, replacing the `add(s, −1)` / draw /
//!    `add(s, +1)` round-trip — run here on the branch-free
//!    [`SumTreeSampler`](pp_rand::SumTreeSampler), which is draw-for-draw
//!    identical to the Fenwick sampler;
//! 3. batched convergence loops:
//!    [`run_until_single_leader`](CountSimulation::run_until_single_leader)
//!    reads the leader-count change of each interaction from the cached
//!    `leader_delta`, so convergence bookkeeping is two integer ops per step
//!    and the step-budget check is hoisted out of the inner loop.
//!
//! The cache can be toggled with
//! [`set_compiled_cache`](CountSimulation::set_compiled_cache); both paths
//! consume the identical RNG stream and produce bit-identical executions
//! (the equivalence is enforced by tests).

use crate::compiled::{self, PairCache};
use crate::{EngineError, LeaderElection, Protocol, Role, RunOutcome};
use pp_rand::{Rng64, SumTreeSampler, Xoshiro256PlusPlus};
use std::collections::HashMap;

/// How many interactions run between hoisted checks (step budget, sampled
/// debug assertions) in the batched convergence loops.
const CONVERGENCE_BATCH: u64 = 4096;

/// Exact count-based engine; see the module-level documentation above.
///
/// # Example
///
/// ```
/// use pp_engine::{CountSimulation, Protocol, Role, LeaderElection};
/// use pp_rand::Xoshiro256PlusPlus;
///
/// struct Frat;
/// impl Protocol for Frat {
///     type State = bool;
///     type Output = Role;
///     fn initial_state(&self) -> bool { true }
///     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
///         if *a && *b { (true, false) } else { (*a, *b) }
///     }
///     fn output(&self, s: &bool) -> Role {
///         if *s { Role::Leader } else { Role::Follower }
///     }
/// }
/// impl LeaderElection for Frat { fn monotone_leaders(&self) -> bool { true } }
///
/// let rng = Xoshiro256PlusPlus::seed_from_u64(7);
/// let mut sim = CountSimulation::new(Frat, 1_000_000, rng).unwrap();
/// sim.run(100);
/// assert_eq!(sim.population(), 1_000_000);
/// assert!(sim.distinct_states_seen() <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountSimulation<P: Protocol, R = Xoshiro256PlusPlus> {
    protocol: P,
    rng: R,
    ids: HashMap<P::State, u32>,
    states: Vec<P::State>,
    outputs: Vec<P::Output>,
    /// 1 for states whose output is the primed leader output, else 0.
    /// All-zero until [`prime_role_tracking`](Self::prime_role_tracking).
    leader_flags: Vec<i8>,
    /// The output value counted as "leader"; `None` until role tracking is
    /// primed (which also backfills `leader_flags` and cached deltas).
    leader_output: Option<P::Output>,
    /// Number of states with a positive count (`support_size` in O(1)).
    support: usize,
    sampler: SumTreeSampler,
    pairs: PairCache,
    n: u64,
    steps: u64,
}

impl<P: Protocol, R: Rng64> CountSimulation<P, R> {
    /// Creates a count simulation of `n` agents in the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when `n < 2`.
    pub fn new(protocol: P, n: usize, rng: R) -> Result<Self, EngineError> {
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        let mut sim = Self::empty(protocol, rng);
        let init = sim.protocol.initial_state();
        let id = sim.intern(init) as usize;
        sim.add_agents(id, n as u64);
        Ok(sim)
    }

    /// Creates a count simulation from explicit state counts.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] when counts sum to < 2.
    pub fn from_counts(
        protocol: P,
        counts: impl IntoIterator<Item = (P::State, u64)>,
        rng: R,
    ) -> Result<Self, EngineError> {
        let mut sim = Self::empty(protocol, rng);
        for (state, count) in counts {
            if count == 0 {
                continue;
            }
            let id = sim.intern(state) as usize;
            sim.add_agents(id, count);
        }
        if sim.n < 2 {
            return Err(EngineError::PopulationTooSmall { n: sim.n as usize });
        }
        Ok(sim)
    }

    fn empty(protocol: P, rng: R) -> Self {
        Self {
            protocol,
            rng,
            ids: HashMap::new(),
            states: Vec::new(),
            outputs: Vec::new(),
            leader_flags: Vec::new(),
            leader_output: None,
            support: 0,
            sampler: SumTreeSampler::new(0),
            pairs: PairCache::new(compiled::MAX_COMPILED_STATES),
            n: 0,
            steps: 0,
        }
    }

    /// Adds `count` agents to slot `id` (construction-time only).
    fn add_agents(&mut self, id: usize, count: u64) {
        if count > 0 && self.sampler.weights()[id] == 0 {
            self.support += 1;
        }
        self.sampler.add(id, count as i64).expect("slot exists");
        self.n += count;
    }

    fn intern(&mut self, state: P::State) -> u32 {
        if let Some(&id) = self.ids.get(&state) {
            return id;
        }
        let id = self.states.len() as u32;
        let output = self.protocol.output(&state);
        self.leader_flags
            .push(i8::from(self.leader_output.as_ref() == Some(&output)));
        self.outputs.push(output);
        self.states.push(state.clone());
        self.ids.insert(state, id);
        let slot = self.sampler.push_slot();
        debug_assert_eq!(slot, id as usize);
        self.pairs.ensure_states(self.states.len());
        id
    }

    /// Enables or disables the compiled pair-transition cache.
    ///
    /// Both settings execute the **same** Markov chain with the **same** RNG
    /// stream — the cache consumes no randomness — so executions are
    /// bit-identical either way; disabling only removes the fast path (every
    /// step then hashes, clones, and calls [`Protocol::transition`]). The
    /// cache also disables itself automatically once the protocol has
    /// interned more than [`compiled::MAX_COMPILED_STATES`] states, since the
    /// dense pair table grows quadratically in the states seen.
    pub fn set_compiled_cache(&mut self, enabled: bool) {
        if enabled {
            self.pairs.reactivate();
            self.pairs.ensure_states(self.states.len());
        } else {
            self.pairs.deactivate();
        }
    }

    /// The compiled pair-transition cache (inspection only): activity,
    /// compiled-pair count, and table footprint.
    pub fn pair_cache(&self) -> &PairCache {
        &self.pairs
    }

    /// The population size `n`.
    pub fn population(&self) -> usize {
        self.n as usize
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The execution clock in parallel time (steps / n).
    pub fn parallel_time(&self) -> f64 {
        crate::parallel_time(self.steps, self.n as usize)
    }

    /// The protocol driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of **distinct states the execution has ever visited** —
    /// the empirical "states used" measure reported in Table 1 experiments.
    pub fn distinct_states_seen(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct states currently occupied by at least one agent.
    ///
    /// Maintained incrementally; this is `O(1)`.
    pub fn support_size(&self) -> usize {
        self.support
    }

    /// The number of agents currently in `state`.
    pub fn count_of(&self, state: &P::State) -> u64 {
        self.ids
            .get(state)
            .map(|&id| self.sampler.weights()[id as usize])
            .unwrap_or(0)
    }

    /// A snapshot of all (state, count) pairs with positive count.
    pub fn state_counts(&self) -> HashMap<P::State, u64> {
        let mut out = HashMap::with_capacity(self.support);
        for (i, s) in self.states.iter().enumerate() {
            let w = self.sampler.weights()[i];
            if w > 0 {
                out.insert(s.clone(), w);
            }
        }
        out
    }

    /// Moves one agent from state slot `from` to state slot `to` (free
    /// no-op when `from == to`), folding occupancy changes into the
    /// incremental support count.
    ///
    /// Interned ids are always in range, so the error arm is unreachable;
    /// it is handled with a debug assertion plus silent no-op rather than a
    /// panic so the hot loop has no unwind edges (panic paths would force
    /// every cached field back to memory at each call).
    #[inline]
    fn move_agent(&mut self, from: usize, to: usize) {
        let Ok(effect) = self.sampler.transfer(from, to) else {
            debug_assert!(false, "interned slots {from}/{to} exist");
            return;
        };
        self.support = self.support + usize::from(effect.populated) - usize::from(effect.emptied);
    }

    /// Compiles the transition of the ordered pair `(s, t)`: runs the real
    /// [`Protocol::transition`], interns the successors, and (when the cache
    /// is active — interning can deactivate it) stores the packed entry for
    /// every later encounter.
    ///
    /// This is the **only** place the protocol's transition is evaluated;
    /// when the cache is disabled it simply runs once per step.
    ///
    /// Marked cold and never-inlined: with the cache active this is off the
    /// steady-state path, and keeping its hashing/interning machinery out
    /// of the hot loop lets the register allocator keep the RNG and tree
    /// state in registers across iterations.
    #[cold]
    #[inline(never)]
    fn compile_pair(&mut self, s: usize, t: usize) -> (usize, usize, i8, bool) {
        let (na, nb) = self.protocol.transition(&self.states[s], &self.states[t]);
        let a = self.intern(na) as usize;
        let b = self.intern(nb) as usize;
        let delta = self.leader_flags[a] + self.leader_flags[b]
            - self.leader_flags[s]
            - self.leader_flags[t];
        let null = a == s && b == t;
        if self.pairs.is_active() {
            // An active cache bounds ids by MAX_COMPILED_STATES, so they
            // always fit the packed entry's id fields.
            self.pairs.set(s, t, compiled::pack(a, b, delta, null));
        }
        (a, b, delta, null)
    }

    /// Applies the interaction of the ordered pair `(s, t)` and returns
    /// `(changed, leader_delta)`.
    #[inline]
    fn apply_pair(&mut self, s: usize, t: usize) -> (bool, i8) {
        let entry = self.pairs.get(s, t);
        let (a, b, delta, null) = if entry == compiled::EMPTY {
            self.compile_pair(s, t)
        } else {
            compiled::unpack(entry)
        };
        // Self-transfers fall out of the lockstep walk for free, so no
        // branching on which side changed.
        self.move_agent(s, a);
        self.move_agent(t, b);
        (!null, delta)
    }

    /// Executes one interaction; returns `true` if any state count changed.
    ///
    /// The population invariant (`n ≥ 2`, enforced at construction) makes
    /// the sampling error unreachable; see [`move_agent`](Self::move_agent)
    /// for why it is absorbed without a panic edge.
    #[inline]
    pub fn step(&mut self) -> bool {
        let Ok((s, t)) = self.sampler.sample_pair_distinct(&mut self.rng) else {
            debug_assert!(false, "population has >= 2 agents");
            return false;
        };
        self.steps += 1;
        self.apply_pair(s, t).0
    }

    /// Executes up to `max` interactions entirely on the compiled fast
    /// path, then handles at most one cache miss, returning the number of
    /// interactions executed (0 only if `max == 0`).
    ///
    /// The inner loop holds every hot field through *split borrows* and
    /// calls nothing that takes `&mut self`: a `&mut self` callee (such as
    /// the interning [`compile_pair`](Self::compile_pair)) could touch any
    /// field, which would force the optimizer to spill the RNG words, step
    /// counter, and support count back to memory on every iteration.
    /// Keeping the miss path outside the loop is what lets them live in
    /// registers for the whole chunk. A miss still consumes its RNG draw,
    /// so the drawn pair is carried out of the loop and completed through
    /// the compile path before returning.
    fn run_chunk(&mut self, max: u64) -> u64 {
        let mut pending = None;
        let mut done = 0u64;
        {
            let Self {
                sampler,
                rng,
                pairs,
                support,
                ..
            } = self;
            let mut sup = *support;
            while done < max {
                let Ok((s, t)) = sampler.sample_pair_distinct(rng) else {
                    debug_assert!(false, "population has >= 2 agents");
                    break;
                };
                let entry = pairs.get(s, t);
                if entry == compiled::EMPTY {
                    pending = Some((s, t));
                    break;
                }
                let (a, b, _, _) = compiled::unpack(entry);
                let (Ok(e1), Ok(e2)) = (sampler.transfer(s, a), sampler.transfer(t, b)) else {
                    debug_assert!(false, "interned slots exist");
                    break;
                };
                sup = sup + usize::from(e1.populated) + usize::from(e2.populated)
                    - usize::from(e1.emptied)
                    - usize::from(e2.emptied);
                done += 1;
            }
            *support = sup;
        }
        self.steps += done;
        if let Some((s, t)) = pending {
            self.steps += 1;
            let (a, b, _, _) = self.compile_pair(s, t);
            self.move_agent(s, a);
            self.move_agent(t, b);
            done += 1;
        }
        done
    }

    /// Executes exactly `steps` interactions.
    pub fn run(&mut self, steps: u64) {
        let mut remaining = steps;
        while remaining > 0 {
            let did = self.run_chunk(remaining);
            if did == 0 {
                debug_assert!(false, "run_chunk always makes progress");
                break;
            }
            remaining -= did;
        }
    }

    /// Runs until `predicate` holds (checked every `batch` steps, starting
    /// immediately) or `max_steps` total interactions have executed.
    ///
    /// The predicate is evaluated only at batch boundaries, so per-step work
    /// stays on the hash-free fast path; choose `batch` against the
    /// resolution the convergence condition needs (e.g. `n/4` steps for a
    /// parallel-time-scale condition).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn run_batched<F>(&mut self, batch: u64, max_steps: u64, mut predicate: F) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        assert!(batch > 0, "batch must be positive");
        loop {
            if predicate(self) {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            if self.steps >= max_steps {
                return RunOutcome {
                    steps: self.steps,
                    converged: false,
                };
            }
            let burst = batch.min(max_steps - self.steps);
            self.run(burst);
        }
    }
}

impl<P: LeaderElection, R: Rng64> CountSimulation<P, R> {
    /// Counts the current leaders in `O(#states)`.
    pub fn leader_count(&self) -> u64 {
        (0..self.states.len())
            .filter(|&i| self.outputs[i] == Role::Leader)
            .map(|i| self.sampler.weights()[i])
            .sum()
    }

    /// Primes per-state leader flags (and retrofits the leader deltas of any
    /// already-compiled pairs) so convergence loops can read each step's
    /// leader-count change straight from the cache.
    fn prime_role_tracking(&mut self) {
        if self.leader_output.is_some() {
            return;
        }
        self.leader_output = Some(Role::Leader);
        for i in 0..self.states.len() {
            self.leader_flags[i] = i8::from(self.outputs[i] == Role::Leader);
        }
        let flags = &self.leader_flags;
        self.pairs.for_each_filled_mut(|s, t, entry| {
            let (a, b, _, null) = compiled::unpack(*entry);
            let delta = flags[a] + flags[b] - flags[s] - flags[t];
            *entry = compiled::pack(a, b, delta, null);
        });
    }

    /// Like [`run_chunk`](Self::run_chunk), but additionally folds each
    /// interaction's cached `leader_delta` into `leaders`, stopping the
    /// moment the count hits exactly 1. Returns `true` on that hit, with
    /// [`steps`](Self::steps) exact.
    fn leader_chunk(&mut self, max: u64, leaders: &mut i64) -> bool {
        let mut pending = None;
        let mut done = 0u64;
        let mut count = *leaders;
        let mut hit = false;
        {
            let Self {
                sampler,
                rng,
                pairs,
                support,
                ..
            } = self;
            let mut sup = *support;
            while done < max {
                let Ok((s, t)) = sampler.sample_pair_distinct(rng) else {
                    debug_assert!(false, "population has >= 2 agents");
                    break;
                };
                let entry = pairs.get(s, t);
                if entry == compiled::EMPTY {
                    pending = Some((s, t));
                    break;
                }
                let (a, b, delta, _) = compiled::unpack(entry);
                let (Ok(e1), Ok(e2)) = (sampler.transfer(s, a), sampler.transfer(t, b)) else {
                    debug_assert!(false, "interned slots exist");
                    break;
                };
                sup = sup + usize::from(e1.populated) + usize::from(e2.populated)
                    - usize::from(e1.emptied)
                    - usize::from(e2.emptied);
                done += 1;
                if delta != 0 {
                    count += i64::from(delta);
                    if count == 1 {
                        hit = true;
                        break;
                    }
                }
            }
            *support = sup;
        }
        self.steps += done;
        if let Some((s, t)) = pending {
            if !hit {
                self.steps += 1;
                let (a, b, delta, _) = self.compile_pair(s, t);
                self.move_agent(s, a);
                self.move_agent(t, b);
                if delta != 0 {
                    count += i64::from(delta);
                    hit = count == 1;
                }
            }
        }
        *leaders = count;
        hit
    }

    /// Runs until exactly one leader remains (see
    /// [`Simulation::run_until_single_leader`](crate::Simulation::run_until_single_leader)
    /// for the stabilization-time caveat).
    ///
    /// The leader count is maintained from the cached `leader_delta` of each
    /// compiled pair — two integer ops per step — and the step-budget check
    /// runs once per batch, not once per step. The returned step count is
    /// still exact: the count is checked at every step that changes it.
    pub fn run_until_single_leader(&mut self, max_steps: u64) -> RunOutcome {
        self.prime_role_tracking();
        let mut leaders = self.leader_count() as i64;
        if leaders == 1 {
            return RunOutcome {
                steps: self.steps,
                converged: true,
            };
        }
        while self.steps < max_steps {
            let burst = CONVERGENCE_BATCH.min(max_steps - self.steps);
            if self.leader_chunk(burst, &mut leaders) {
                return RunOutcome {
                    steps: self.steps,
                    converged: true,
                };
            }
            // Sampled invariant check: once per batch, not per step.
            debug_assert_eq!(leaders, self.leader_count() as i64);
        }
        RunOutcome {
            steps: self.steps,
            converged: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulation, UniformScheduler};
    use pp_rand::SeedSequence;

    #[derive(Debug, Clone, Copy)]
    struct Frat;

    impl Protocol for Frat {
        type State = bool;
        type Output = Role;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }
    }

    impl LeaderElection for Frat {
        fn monotone_leaders(&self) -> bool {
            true
        }
    }

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn population_is_conserved() {
        let mut sim = CountSimulation::new(Frat, 100, rng(1)).unwrap();
        for _ in 0..1000 {
            sim.step();
            let total: u64 = sim.state_counts().values().sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn leader_count_decreases_to_one() {
        let mut sim = CountSimulation::new(Frat, 500, rng(2)).unwrap();
        let outcome = sim.run_until_single_leader(100_000_000);
        assert!(outcome.converged);
        assert_eq!(sim.leader_count(), 1);
        assert_eq!(sim.distinct_states_seen(), 2);
        assert_eq!(sim.support_size(), 2);
    }

    #[test]
    fn rejects_tiny_population() {
        assert!(CountSimulation::new(Frat, 1, rng(0)).is_err());
        assert!(CountSimulation::from_counts(Frat, [(true, 1)], rng(0)).is_err());
    }

    #[test]
    fn from_counts_sets_up_configuration() {
        let sim = CountSimulation::from_counts(Frat, [(true, 3), (false, 7)], rng(3)).unwrap();
        assert_eq!(sim.population(), 10);
        assert_eq!(sim.leader_count(), 3);
        assert_eq!(sim.count_of(&true), 3);
        assert_eq!(sim.count_of(&false), 7);
        assert_eq!(sim.support_size(), 2);
    }

    #[test]
    fn from_counts_ignores_zero_entries() {
        let sim = CountSimulation::from_counts(Frat, [(true, 2), (false, 0)], rng(4)).unwrap();
        assert_eq!(sim.population(), 2);
        assert_eq!(sim.distinct_states_seen(), 1);
        assert_eq!(sim.support_size(), 1);
    }

    #[test]
    fn agrees_with_agent_engine_distributionally() {
        // Mean convergence time of fratricide over seeds should agree between
        // engines (both simulate the same Markov chain exactly). Theory:
        // E[steps] = sum_{k=2..n} n(n-1)/(k(k-1)) ≈ n^2 * (1 - 1/n).
        let n = 64;
        let seeds = SeedSequence::new(99);
        let runs = 40;
        let mean = |use_count: bool| -> f64 {
            let mut total = 0u64;
            for i in 0..runs {
                let seed = seeds.seed_at(i);
                let steps = if use_count {
                    let mut sim = CountSimulation::new(Frat, n, rng(seed)).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                } else {
                    let sched = UniformScheduler::seed_from_u64(seed);
                    let mut sim = Simulation::new(Frat, n, sched).unwrap();
                    sim.run_until_single_leader(u64::MAX).steps
                };
                total += steps;
            }
            total as f64 / runs as f64
        };
        let m_agent = mean(false);
        let m_count = mean(true);
        let theory: f64 = (2..=n as u64)
            .map(|k| (n as f64) * (n as f64 - 1.0) / (k as f64 * (k as f64 - 1.0)))
            .sum();
        // Loose agreement (Monte-Carlo with 40 runs): within 25% of theory.
        assert!(
            (m_agent / theory - 1.0).abs() < 0.25,
            "agent engine mean {m_agent} vs theory {theory}"
        );
        assert!(
            (m_count / theory - 1.0).abs() < 0.25,
            "count engine mean {m_count} vs theory {theory}"
        );
    }

    /// A protocol with unbounded state growth to exercise interning.
    #[derive(Debug, Clone, Copy)]
    struct Counter;

    impl Protocol for Counter {
        type State = u32;
        type Output = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn transition(&self, a: &u32, b: &u32) -> (u32, u32) {
            (a + 1, *b)
        }
        fn output(&self, s: &u32) -> u32 {
            *s
        }
    }

    #[test]
    fn interning_tracks_distinct_states() {
        let mut sim = CountSimulation::new(Counter, 10, rng(5)).unwrap();
        sim.run(100);
        assert!(sim.distinct_states_seen() > 1);
        let total: u64 = sim.state_counts().values().sum();
        assert_eq!(total, 10);
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    fn parallel_time_matches_steps() {
        let mut sim = CountSimulation::new(Frat, 50, rng(6)).unwrap();
        sim.run(100);
        assert!((sim.parallel_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_support_matches_snapshot() {
        let mut sim = CountSimulation::new(Counter, 16, rng(7)).unwrap();
        for _ in 0..500 {
            sim.step();
            assert_eq!(sim.support_size(), sim.state_counts().len());
        }
    }

    #[test]
    fn cached_and_uncached_runs_are_bit_identical() {
        // The compiled cache consumes no randomness, so the cached and
        // uncached engines must agree on every count at every single step.
        for seed in 0..4 {
            let mut cached = CountSimulation::new(Frat, 64, rng(seed)).unwrap();
            let mut reference = CountSimulation::new(Frat, 64, rng(seed)).unwrap();
            reference.set_compiled_cache(false);
            assert!(cached.pair_cache().is_active());
            assert!(!reference.pair_cache().is_active());
            for _ in 0..2000 {
                assert_eq!(cached.step(), reference.step());
                assert_eq!(cached.state_counts(), reference.state_counts());
                assert_eq!(cached.support_size(), reference.support_size());
            }
        }
    }

    #[test]
    fn cached_and_uncached_convergence_steps_agree() {
        let mut cached = CountSimulation::new(Frat, 200, rng(11)).unwrap();
        let mut reference = CountSimulation::new(Frat, 200, rng(11)).unwrap();
        reference.set_compiled_cache(false);
        let a = cached.run_until_single_leader(u64::MAX);
        let b = reference.run_until_single_leader(u64::MAX);
        assert_eq!(a, b);
        assert_eq!(cached.leader_count(), 1);
    }

    #[test]
    fn cache_deactivates_on_state_explosion_and_stays_exact() {
        // Counter interns a fresh state on (almost) every interaction, so a
        // long run blows past MAX_COMPILED_STATES and must fall back — with
        // no behavioral difference vs. an uncached twin.
        // With n = 2 each step increments one of two agents, so the max
        // value (= distinct states − 1) is at least steps/2: the state
        // count provably exceeds the cap.
        let mut cached = CountSimulation::new(Counter, 2, rng(12)).unwrap();
        let mut reference = CountSimulation::new(Counter, 2, rng(12)).unwrap();
        reference.set_compiled_cache(false);
        let steps = (compiled::MAX_COMPILED_STATES as u64 + 64) * 2;
        for _ in 0..steps {
            assert_eq!(cached.step(), reference.step());
        }
        assert!(!cached.pair_cache().is_active());
        assert_eq!(cached.state_counts(), reference.state_counts());
    }

    #[test]
    fn run_batched_checks_only_at_batch_boundaries() {
        let mut sim = CountSimulation::new(Frat, 100, rng(13)).unwrap();
        let outcome = sim.run_batched(64, 1_000_000, |s| s.steps() >= 100);
        assert!(outcome.converged);
        // 100 is not a multiple of the batch: first boundary at/after 100.
        assert_eq!(outcome.steps, 128);
        let outcome = sim.run_batched(64, 200, |_| false);
        assert!(!outcome.converged);
        assert_eq!(outcome.steps, 200);
    }

    #[test]
    fn run_batched_checks_predicate_before_running() {
        let mut sim = CountSimulation::new(Frat, 10, rng(14)).unwrap();
        let outcome = sim.run_batched(100, 1_000, |_| true);
        assert!(outcome.converged);
        assert_eq!(outcome.steps, 0);
    }

    #[test]
    fn pair_cache_compiles_pairs_lazily() {
        let mut sim = CountSimulation::new(Frat, 32, rng(15)).unwrap();
        assert_eq!(sim.pair_cache().compiled_pairs(), 0);
        sim.run(100);
        // Fratricide over {L, F} has at most 4 ordered pairs.
        assert!(sim.pair_cache().compiled_pairs() <= 4);
        assert!(sim.pair_cache().compiled_pairs() >= 1);
        assert!(sim.pair_cache().table_bytes() > 0);
    }
}
