//! The population-protocol model as an executable substrate.
//!
//! A *population* is a set of `n` anonymous finite-state agents on a complete
//! interaction graph. At every discrete step a *scheduler* selects one ordered
//! pair of distinct agents — the *initiator* and the *responder* — and both
//! update their states through the protocol's joint transition function
//! (Angluin, Aspnes, Diamadi, Fischer, Peralta, *Computation in networks of
//! passively mobile finite-state sensors*, 2006). Time is measured in
//! *parallel time* = steps / n.
//!
//! This crate provides everything the model needs to run fast and
//! reproducibly:
//!
//! * [`Protocol`] — the transition system: states, joint transition function,
//!   outputs; [`LeaderElection`] refines it for protocols whose output is a
//!   [`Role`].
//! * [`Configuration`] — a mapping from agents to states, with deterministic
//!   schedule application for unit tests and formal-definition checks.
//! * Schedulers — [`UniformScheduler`] (the uniformly random scheduler Γ of
//!   the paper), [`ReplayScheduler`] (fixed schedule), and
//!   [`RoundRobinScheduler`] (deterministic adversarial-ish sweep).
//! * [`Simulation`] — the per-agent reference engine; `O(1)` per interaction.
//! * [`CountSimulation`] — an *exact* count-based engine that interns states
//!   and samples interactions from per-state counts; it also measures how
//!   many distinct states an execution actually visits, which is the
//!   "number of states" column of the paper's Table 1. It dispatches across
//!   **four execution tiers** (see the [`tier` docs](EngineTier) and the
//!   [`count_engine` docs](CountSimulation)): the uncached reference path,
//!   the hash-free [compiled](compiled) per-step path, a null-skipping jump
//!   scheduler that telescopes runs of null interactions into single
//!   geometric draws wherever they dominate (making `Θ(n²)`-step election
//!   tails at `n = 2^28`–`2^30` seconds-scale), and a collision-free
//!   hypergeometric **batch** tier that applies `Θ(√n)`-interaction rounds
//!   in bulk for any null density. Tier heuristics are tunable through
//!   [`EngineConfig`].
//! * [`epidemic`] — the one-way epidemic process of \[AAE08\], the workhorse of
//!   every O(log n) bound in the paper (its Lemma 2).
//!
//! # Quickstart
//!
//! ```
//! use pp_engine::prelude::*;
//!
//! /// Two-state fratricide leader election: L × L → L × F.
//! struct Fratricide;
//!
//! impl Protocol for Fratricide {
//!     type State = bool; // true = leader
//!     type Output = Role;
//!     fn initial_state(&self) -> bool { true }
//!     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
//!         if *a && *b { (true, false) } else { (*a, *b) }
//!     }
//!     fn output(&self, s: &bool) -> Role {
//!         if *s { Role::Leader } else { Role::Follower }
//!     }
//! }
//!
//! impl LeaderElection for Fratricide {
//!     fn monotone_leaders(&self) -> bool { true }
//! }
//!
//! let scheduler = UniformScheduler::seed_from_u64(1);
//! let mut sim = Simulation::new(Fratricide, 50, scheduler).unwrap();
//! let outcome = sim.run_until_single_leader(1_000_000);
//! assert!(outcome.converged);
//! assert_eq!(sim.leader_count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
pub mod compiled;
mod config;
mod count_engine;
mod engine;
pub mod epidemic;
mod error;
mod jump;
pub mod obs;
mod protocol;
mod round;
mod scheduler;
pub mod snapshot;
mod tier;
mod trace;
pub mod wide;

pub use batch::BatchStats;
pub use config::Configuration;
pub use count_engine::CountSimulation;
pub use engine::{RunOutcome, Simulation};
pub use error::EngineError;
pub use obs::{EngineEvent, EngineMetrics, EngineObserver, TierTimeline, TrajectorySampler};
pub use protocol::{check_symmetry, LeaderElection, Protocol, Role};
pub use round::LawMode;
pub use scheduler::{
    Interaction, ReplayScheduler, RoundRobinScheduler, Scheduler, UniformScheduler,
};
pub use snapshot::{SnapshotError, SnapshotState, SNAPSHOT_VERSION};
pub use tier::{EngineConfig, EngineTier, JumpStats, TierUsage};
pub use trace::Trace;
pub use wide::{WideElection, WideLaneExport, WideSimulation, WideTierPolicy};

/// How many interactions run between hoisted checks (step budget, sampled
/// debug assertions) in both engines' batched convergence loops.
pub(crate) const CONVERGENCE_BATCH: u64 = 4096;

/// Convenient glob-import of the engine's most common items.
pub mod prelude {
    pub use crate::{
        Configuration, CountSimulation, EngineError, Interaction, LeaderElection, Protocol,
        ReplayScheduler, Role, RoundRobinScheduler, RunOutcome, Scheduler, Simulation,
        UniformScheduler,
    };
    pub use pp_rand::{Rng64, SeedSequence, Xoshiro256PlusPlus};
}

/// Converts a step count into parallel time for a population of `n` agents.
///
/// Parallel time is the number of interactions divided by `n`; it normalizes
/// for the fact that `n` interactions give each agent Θ(1) expected
/// participations.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parallel_time(steps: u64, n: usize) -> f64 {
    assert!(n > 0, "population size must be positive");
    steps as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_time_normalizes_by_population() {
        assert_eq!(parallel_time(1000, 100), 10.0);
        assert_eq!(parallel_time(0, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn parallel_time_rejects_zero_population() {
        parallel_time(1, 0);
    }
}
