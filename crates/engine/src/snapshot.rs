//! Versioned binary snapshots of mid-election count-engine executions.
//!
//! [`CountSimulation::snapshot`](crate::CountSimulation::snapshot) serializes
//! a complete mid-election execution — interned state table and seen-state
//! map, per-state counts, compiled pair cache, tier-controller state, and
//! RNG words — into a self-describing byte buffer;
//! [`CountSimulation::resume`](crate::CountSimulation::resume) rebuilds the
//! simulation from those bytes. The format is hand-rolled (the workspace has
//! no serialization dependency, by policy) and versioned: a magic prefix,
//! [`SNAPSHOT_VERSION`], tagged length-prefixed sections, and an FNV-1a
//! checksum footer.
//!
//! # The bit-identical-resume contract
//!
//! A snapshot is a **transparent pause**: inserting
//! `snapshot → serialize → resume` between two driver calls leaves the rest
//! of the execution *bit-identical* to the same call sequence without the
//! pause, on every tier — the resumed simulation draws the same RNG words,
//! executes the same interactions at the same step counts, and reaches the
//! same configurations. This sits alongside (and is guaranteed by) the
//! engine's existing determinism contracts: the cached/uncached per-step
//! tiers are bit-identical to each other, and the jump/batch tiers are
//! distribution-exact but consume the RNG stream differently.
//!
//! The contract is about *pausing between calls*, not about re-segmenting
//! work: on the jump and batch tiers, `run(a); run(b)` is already not
//! bit-identical to `run(a + b)` without any snapshot, because a budget cap
//! can truncate an episode and discard its draws. Snapshot/resume inserted
//! at any call boundary preserves whatever segmentation the caller uses.
//!
//! What makes the pause transparent is the split between serialized and
//! recomputed state. Serialized exactly: counts and live-slot order, the
//! pair cache's entries *and geometry* (its stride decides which pairs are
//! addressable, hence which compile and consume RNG), tier engage flags and
//! the review schedule, step counters, and the RNG words. Recomputed on
//! resume, because they are deterministic functions of the serialized state:
//! state outputs, the sampler tree (its shape is a pure function of the
//! weights vector), the jump scheduler's null ledger (reseeded from the
//! cache's null entries and re-synced against the counts before its next
//! draw), and role-tracking priming (idempotently re-applied by
//! [`run_until_single_leader`](crate::CountSimulation::run_until_single_leader),
//! which also retrofits every cached leader delta).
//!
//! # Format versioning policy
//!
//! Any change to the byte layout bumps [`SNAPSHOT_VERSION`]; readers reject
//! other versions with [`SnapshotError::UnsupportedVersion`] rather than
//! guessing. Corrupt or truncated input yields a typed [`SnapshotError`] —
//! deserialization never panics. A canary test pins the serialized bytes of
//! a reference execution so layout drift without a version bump fails CI.

use std::fmt;

/// Version tag written after the magic; bump on any byte-layout change.
/// Version 2 appended the round-law mode to the config section and the
/// contingency/segment counters to the tier section. Version 3 appended
/// the per-tier interaction usage counters to the tier section so resumed
/// runs keep attributing past work in [`metrics`](crate::CountSimulation::metrics).
pub const SNAPSHOT_VERSION: u32 = 3;

/// 8-byte magic prefix identifying count-engine snapshots.
pub(crate) const MAGIC: [u8; 8] = *b"PPENGSNP";

/// Section tags, in the order sections appear in the buffer.
pub(crate) const TAG_CONFIG: u16 = 1;
pub(crate) const TAG_POPULATION: u16 = 2;
pub(crate) const TAG_CACHE: u16 = 3;
pub(crate) const TAG_TIERS: u16 = 4;
pub(crate) const TAG_RNG: u16 = 5;

/// Why a snapshot buffer could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The buffer ends before the data it promises.
    Truncated,
    /// The magic prefix is not a count-engine snapshot's.
    BadMagic,
    /// The snapshot was written by an unknown (likely future) format
    /// version.
    UnsupportedVersion {
        /// The version tag found in the buffer.
        found: u32,
    },
    /// The FNV-1a footer does not match the buffer contents.
    ChecksumMismatch,
    /// A section header promises more bytes than the buffer holds.
    BadSectionLength {
        /// Tag of the offending section.
        tag: u16,
    },
    /// The bytes decoded, but describe an inconsistent simulation (count
    /// mismatches, out-of-range ids, duplicate states, invalid RNG state…).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => f.write_str("snapshot buffer is truncated"),
            SnapshotError::BadMagic => f.write_str("not a count-engine snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {SNAPSHOT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch => f.write_str("snapshot checksum mismatch"),
            SnapshotError::BadSectionLength { tag } => {
                write!(f, "snapshot section {tag} has a corrupted length")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the snapshot footer's integrity check (and the
/// canary test's layout fingerprint). Not cryptographic; it guards against
/// truncation and accidental corruption, not tampering.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Self-delimiting binary codec for a protocol's state type, used by the
/// engine snapshot format to persist the interned state table.
///
/// Implementations must roundtrip exactly (`decode(encode(s)) == s`) and
/// [`decode`](Self::decode) must *never panic* on arbitrary bytes — return
/// `None` for anything that is not a valid encoding (snapshot buffers can be
/// truncated or corrupted). Little-endian fixed-width encodings are provided
/// for the primitive integer types and `bool`.
pub trait SnapshotState: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `bytes`, advancing the slice past
    /// it; `None` if the bytes are not a valid encoding.
    fn decode(bytes: &mut &[u8]) -> Option<Self>;
}

macro_rules! snapshot_state_int {
    ($($t:ty),*) => {$(
        impl SnapshotState for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &mut &[u8]) -> Option<Self> {
                const W: usize = std::mem::size_of::<$t>();
                if bytes.len() < W {
                    return None;
                }
                let (head, rest) = bytes.split_at(W);
                *bytes = rest;
                Some(<$t>::from_le_bytes(head.try_into().expect("length checked")))
            }
        }
    )*};
}

snapshot_state_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl SnapshotState for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        match u8::decode(bytes)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

/// Append-only buffer builder for the snapshot format: magic + version up
/// front, tagged length-prefixed sections, checksum footer at
/// [`finish`](Self::finish).
pub(crate) struct SnapshotWriter {
    buf: Vec<u8>,
    /// Offset of the open section's length field, if a section is open.
    open_len_at: Option<usize>,
}

impl SnapshotWriter {
    pub(crate) fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        Self {
            buf,
            open_len_at: None,
        }
    }

    /// Opens a section: writes the tag and a length placeholder that
    /// [`end_section`](Self::end_section) patches.
    pub(crate) fn begin_section(&mut self, tag: u16) {
        debug_assert!(self.open_len_at.is_none(), "sections do not nest");
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.open_len_at = Some(self.buf.len());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
    }

    pub(crate) fn end_section(&mut self) {
        let at = self.open_len_at.take().expect("a section is open");
        let len = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_state<S: SnapshotState>(&mut self, s: &S) {
        s.encode(&mut self.buf);
    }

    pub(crate) fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends the checksum footer and returns the finished buffer.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        debug_assert!(self.open_len_at.is_none(), "unclosed section");
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Bounded cursor over a validated snapshot buffer (or one of its sections).
#[derive(Debug)]
pub(crate) struct SnapshotReader<'a> {
    buf: &'a [u8],
}

impl<'a> SnapshotReader<'a> {
    /// Validates the envelope — length, magic, version, checksum — and
    /// returns a reader positioned at the first section.
    pub(crate) fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        // magic + version + checksum is the smallest conceivable snapshot.
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(
            bytes[MAGIC.len()..MAGIC.len() + 4]
                .try_into()
                .expect("length checked"),
        );
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let body_end = bytes.len() - 8;
        let footer = u64::from_le_bytes(bytes[body_end..].try_into().expect("length checked"));
        if fnv1a64(&bytes[..body_end]) != footer {
            return Err(SnapshotError::ChecksumMismatch);
        }
        Ok(Self {
            buf: &bytes[MAGIC.len() + 4..body_end],
        })
    }

    /// Reads the next section header, requiring `tag`, and returns a reader
    /// over exactly that section's payload.
    pub(crate) fn section(&mut self, tag: u16) -> Result<SnapshotReader<'a>, SnapshotError> {
        let found = self.get_u16()?;
        if found != tag {
            return Err(SnapshotError::Corrupt("unexpected section tag"));
        }
        let len = self.get_u64()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::BadSectionLength { tag })?;
        if len > self.buf.len() {
            return Err(SnapshotError::BadSectionLength { tag });
        }
        let (payload, rest) = self.buf.split_at(len);
        self.buf = rest;
        Ok(SnapshotReader { buf: payload })
    }

    /// Fails with `Corrupt(what)` unless every byte was consumed — catches
    /// section lengths that are too long for their content.
    pub(crate) fn expect_end(&self, what: &'static str) -> Result<(), SnapshotError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(what))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("boolean flag out of range")),
        }
    }

    pub(crate) fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub(crate) fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub(crate) fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn get_state<S: SnapshotState>(&mut self) -> Result<S, SnapshotError> {
        let mut cursor = self.buf;
        let state =
            S::decode(&mut cursor).ok_or(SnapshotError::Corrupt("undecodable interned state"))?;
        let consumed = self.buf.len() - cursor.len();
        self.buf = &self.buf[consumed..];
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_codecs_roundtrip() {
        fn roundtrip<S: SnapshotState + PartialEq + std::fmt::Debug>(v: S) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(S::decode(&mut cursor), Some(v));
            assert!(cursor.is_empty());
        }
        roundtrip(true);
        roundtrip(false);
        roundtrip(0xABu8);
        roundtrip(0xAB_CDu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX - 3);
        roundtrip(-7i8);
        roundtrip(-12_345i16);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN + 1);
    }

    #[test]
    fn bool_decode_rejects_junk() {
        let mut cursor: &[u8] = &[2];
        assert_eq!(bool::decode(&mut cursor), None);
        let mut empty: &[u8] = &[];
        assert_eq!(bool::decode(&mut empty), None);
        assert_eq!(u32::decode(&mut [1u8, 2].as_slice()), None);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.begin_section(TAG_CONFIG);
        w.put_u64(99);
        w.put_bool(true);
        w.end_section();
        w.begin_section(TAG_POPULATION);
        w.put_u16(7);
        w.put_u32(1234);
        w.end_section();
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut s1 = r.section(TAG_CONFIG).unwrap();
        assert_eq!(s1.get_u64().unwrap(), 99);
        assert!(s1.get_bool().unwrap());
        s1.expect_end("config").unwrap();
        let mut s2 = r.section(TAG_POPULATION).unwrap();
        assert_eq!(s2.get_u16().unwrap(), 7);
        assert_eq!(s2.get_u32().unwrap(), 1234);
        s2.expect_end("population").unwrap();
        r.expect_end("snapshot").unwrap();
    }

    #[test]
    fn open_rejects_bad_envelopes() {
        assert_eq!(
            SnapshotReader::open(&[]).unwrap_err(),
            SnapshotError::Truncated
        );
        assert_eq!(
            SnapshotReader::open(&[0u8; 12]).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut not_magic = SnapshotWriter::new().finish();
        not_magic[0] ^= 0xFF;
        // Restore the checksum so the magic check is what fires.
        let end = not_magic.len() - 8;
        let sum = fnv1a64(&not_magic[..end]).to_le_bytes();
        not_magic[end..].copy_from_slice(&sum);
        assert_eq!(
            SnapshotReader::open(&not_magic).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn open_rejects_future_version() {
        let mut bytes = SnapshotWriter::new().finish();
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        assert_eq!(
            SnapshotReader::open(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: SNAPSHOT_VERSION + 1
            }
        );
    }

    #[test]
    fn single_byte_flips_trip_the_checksum_or_magic() {
        let mut w = SnapshotWriter::new();
        w.begin_section(TAG_RNG);
        w.put_u64(42);
        w.end_section();
        let bytes = w.finish();
        assert!(SnapshotReader::open(&bytes).is_ok());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(SnapshotReader::open(&bad).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn corrupted_section_length_is_typed() {
        let mut w = SnapshotWriter::new();
        w.begin_section(TAG_CACHE);
        w.put_u32(5);
        w.end_section();
        let mut bytes = w.finish();
        // The section length field sits right after magic+version+tag;
        // inflate it past the buffer and re-seal the checksum so the length
        // check (not the checksum) is what fires.
        let len_at = MAGIC.len() + 4 + 2;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(
            r.section(TAG_CACHE).unwrap_err(),
            SnapshotError::BadSectionLength { tag: TAG_CACHE }
        );
    }

    #[test]
    fn wrong_section_tag_is_corrupt() {
        let mut w = SnapshotWriter::new();
        w.begin_section(TAG_TIERS);
        w.end_section();
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.section(TAG_CONFIG).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn errors_display_and_propagate() {
        let e: Box<dyn std::error::Error> =
            Box::new(SnapshotError::UnsupportedVersion { found: 9 });
        assert!(e.to_string().contains("version 9"));
        assert!(SnapshotError::BadSectionLength { tag: 3 }
            .to_string()
            .contains("section 3"));
    }
}
