//! The **batch tier**: collision-free hypergeometric rounds à la Berenbrink
//! et al., *Simulating Population Protocols in Sub-Constant Time per
//! Interaction* (ESA 2020).
//!
//! The jump scheduler only helps when null interactions dominate; the batch
//! tier removes the per-interaction cost for *any* transition density. The
//! key observation: in a run of consecutive interactions in which **no agent
//! participates twice**, the interactions touch pairwise-disjoint agents, so
//! they commute — the run's effect on the configuration depends only on *how
//! many* interactions each ordered state pair received, never on their
//! order. The engine therefore processes whole runs at once:
//!
//! 1. **Run length.** The probability that the next interaction is
//!    collision-free, given `u` agents already used, is
//!    `(n−u)(n−u−1) / (n(n−1))`; the maximal collision-free prefix length is
//!    sampled exactly by inverting the running product of these ratios with
//!    a single uniform ([`collision_free_prefix`]). Its expectation is the
//!    birthday bound `≈ √(πn/8)` — the `Θ(√n)` round length.
//! 2. **Who interacts.** The `2L` agents of a collision-free run of length
//!    `L` are a uniform without-replacement sample of the population. By
//!    exchangeability, the initiator states are a multivariate
//!    hypergeometric draw of `L` from the counts, the responder states an
//!    `L`-draw from what remains, and pairing a uniformly permuted responder
//!    sequence against the initiators realizes the uniformly random
//!    matching. Each conditional draw is one
//!    [`Hypergeometric`](pp_rand::Hypergeometric) sample, visiting states in
//!    descending-count order so the decomposition exhausts its draws after
//!    `O(live support)` samples.
//! 3. **Collisions, exactly.** The run ends because the *next* interaction
//!    touches a used agent. Used agents are exchangeable given their state
//!    counts, so the colliding interaction is executed individually from a
//!    two-urn (fresh/used) configuration with exact integer category
//!    weights — the sampled schedule stays distributionally identical to
//!    sequential stepping, collision included.
//!
//! Convergence detection stays **step-exact**: conditioned on the run's pair
//! multiset, the true process orders the interactions as a uniformly random
//! interleaving (sampling without replacement is exchangeable), so when the
//! leader count could touch 1 inside a round the engine shuffles the round
//! into one such interleaving and walks it interaction by interaction (the
//! "exact walk"), stopping at the precise hitting step. Rounds that provably
//! cannot touch 1 skip the walk and apply bulk count deltas.
//!
//! Like the jump scheduler, the batch tier changes no distribution — it
//! consumes the RNG stream differently, so executions are equal in law, not
//! bit-identical; the 4-tier chi-square suite (`tests/batch_equivalence.rs`)
//! pins the law.
//!
//! This module owns the statistical machinery and the urn scratch state; the
//! episode orchestration (which needs the pair cache and interning) lives in
//! [`CountSimulation`](crate::CountSimulation).

use pp_rand::{Hypergeometric, Rng64};

/// Throughput counters of the batch tier (see
/// [`CountSimulation::batch_stats`](crate::CountSimulation::batch_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch rounds executed.
    pub episodes: u64,
    /// Interactions applied through collision-free bulk rounds.
    pub bulk_interactions: u64,
    /// Collision interactions executed individually at round boundaries.
    pub collision_interactions: u64,
    /// Rounds resolved by the exact shuffled walk (leader count near 1).
    pub exact_walks: u64,
}

/// Batch-tier state riding along the count engine.
#[derive(Debug, Clone)]
pub(crate) struct BatchState {
    /// User toggle ([`CountSimulation::set_batch_tier`]
    /// (crate::CountSimulation::set_batch_tier)); on by default.
    pub enabled: bool,
    /// Currently executing rounds instead of per-step chunks.
    pub engaged: bool,
    /// Test hook: pinned engaged regardless of the engage/exit heuristics.
    pub forced: bool,
    pub stats: BatchStats,
    pub scratch: BatchScratch,
}

impl BatchState {
    pub(crate) fn new() -> Self {
        Self {
            enabled: true,
            engaged: false,
            forced: false,
            stats: BatchStats::default(),
            scratch: BatchScratch::default(),
        }
    }
}

/// Samples the length of the maximal collision-free interaction prefix,
/// capped at `budget`: returns `(min(L, budget), L < budget)` where the flag
/// says a collision interaction terminates the run inside the budget.
///
/// Exact single-uniform inversion of `P(L ≥ m) = Π_{j<m} (n−2j)(n−2j−1) /
/// (n(n−1))`; the product is accumulated incrementally, so the cost is
/// `O(min(L, budget))` multiplications. The first step is always
/// collision-free (`P(L ≥ 1) = 1`), so the returned length is at least 1
/// for any positive budget.
pub(crate) fn collision_free_prefix<R: Rng64 + ?Sized>(
    rng: &mut R,
    n: u64,
    budget: u64,
) -> (u64, bool) {
    debug_assert!(n >= 2 && budget >= 1);
    let u = rng.unit_f64();
    let denom = n as f64 * (n - 1) as f64;
    let mut survive = 1.0f64;
    let mut m = 0u64;
    loop {
        if m == budget {
            return (budget, false);
        }
        let fresh = n - 2 * m.min(n / 2);
        let step = if fresh >= 2 {
            fresh as f64 * (fresh - 1) as f64 / denom
        } else {
            0.0
        };
        survive *= step;
        if u >= survive {
            // The first m steps are collision-free; step m+1 collides.
            return (m, true);
        }
        m += 1;
    }
}

/// Reusable per-round urn state: the **fresh** urn (agents untouched this
/// round, initialized from the engine counts) and the **used** urn (agents
/// that already interacted this round, holding their *post*-transition
/// states), plus the expansion buffers of the initiator/responder sequences.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchScratch {
    /// Per-state counts of untouched agents.
    pub fresh: Vec<u64>,
    /// Per-state counts of agents already used this round.
    pub used: Vec<u64>,
    pub fresh_total: u64,
    pub used_total: u64,
    /// Occupied state ids in descending-count order (the decomposition
    /// visiting order; any pre-round-measurable order is law-correct, and
    /// largest-first exhausts the draws soonest).
    order: Vec<u32>,
    /// Initiator state sequence of the round (expanded multiset).
    pub init_seq: Vec<u32>,
    /// Responder state sequence of the round (expanded multiset).
    pub resp_seq: Vec<u32>,
}

impl BatchScratch {
    /// Resets the urns for a new round over the given per-state counts.
    ///
    /// The visiting order is the total order `(count desc, id asc)` — a
    /// pure function of the counts, so *how* it is sorted can never change
    /// a draw. Counts move little between consecutive rounds, which makes
    /// the previous round's order an almost-sorted starting point:
    /// carrying it over and repairing with insertion sort (`O(classes +
    /// displacements)`) replaces the full re-sort on the hot path.
    pub(crate) fn begin(&mut self, counts: &[u64]) {
        self.fresh.clear();
        self.fresh.extend_from_slice(counts);
        self.used.clear();
        self.used.resize(counts.len(), 0);
        self.fresh_total = counts.iter().sum();
        self.used_total = 0;
        // Rebuild the candidate list seeded by the previous order: retain
        // its still-occupied ids, then append newly occupied ids (tracked
        // via the used urn, zeroed above, as a scratch membership flag).
        for &id in &self.order {
            if let Some(f) = self.used.get_mut(id as usize) {
                *f = 1;
            }
        }
        {
            let fresh = &self.fresh;
            self.order
                .retain(|&id| fresh.get(id as usize).copied().unwrap_or(0) > 0);
        }
        for (id, &c) in counts.iter().enumerate() {
            if c > 0 && self.used[id] == 0 {
                self.order.push(id as u32);
            }
        }
        self.used[..counts.len()].fill(0);
        let fresh = &self.fresh;
        let order = &mut self.order;
        // Insertion sort: linear on the carried-over prefix, and the
        // comparator's total order guarantees the same permutation any
        // sort would produce.
        for i in 1..order.len() {
            let id = order[i];
            let key = (std::cmp::Reverse(fresh[id as usize]), id);
            let mut j = i;
            while j > 0 {
                let prev = order[j - 1];
                if (std::cmp::Reverse(fresh[prev as usize]), prev) <= key {
                    break;
                }
                order[j] = prev;
                j -= 1;
            }
            order[j] = id;
        }
        self.init_seq.clear();
        self.resp_seq.clear();
    }

    /// Grows the urns after mid-round interning of fresh states.
    pub(crate) fn ensure_states(&mut self, states: usize) {
        if self.fresh.len() < states {
            self.fresh.resize(states, 0);
            self.used.resize(states, 0);
        }
    }

    /// Draws a `draws`-element multiset from the fresh urn (without
    /// replacement) by conditional hypergeometric decomposition, appending
    /// the expanded state sequence to `init_seq` or `resp_seq` and removing
    /// the drawn agents from the urn.
    pub(crate) fn draw_multiset<R: Rng64 + ?Sized>(
        &mut self,
        rng: &mut R,
        draws: u64,
        responders: bool,
    ) {
        debug_assert!(draws <= self.fresh_total);
        let seq = if responders {
            &mut self.resp_seq
        } else {
            &mut self.init_seq
        };
        let mut remaining = draws;
        // Classes not yet visited form the conditioning population.
        let mut pop = self.fresh_total;
        for &id in &self.order {
            if remaining == 0 {
                break;
            }
            let c = self.fresh[id as usize];
            if c == 0 {
                pop -= c;
                continue;
            }
            let x = if pop == c {
                remaining
            } else {
                Hypergeometric::new(pop, c, remaining)
                    .expect("class within remaining population")
                    .sample(rng)
            };
            // Run-length fill (no RNG involved; only the expansion speed).
            seq.resize(seq.len() + x as usize, id);
            self.fresh[id as usize] -= x;
            remaining -= x;
            pop -= c;
        }
        debug_assert_eq!(remaining, 0, "classes must exhaust the draws");
        self.fresh_total -= draws;
    }

    /// Draws one agent's state from the fresh or used urn (uniformly over
    /// the urn's agents) and removes it. `O(live support)` scan — collision
    /// handling only, never on the bulk path.
    pub(crate) fn draw_one<R: Rng64 + ?Sized>(&mut self, rng: &mut R, from_used: bool) -> usize {
        let (urn, total) = if from_used {
            (&mut self.used, &mut self.used_total)
        } else {
            (&mut self.fresh, &mut self.fresh_total)
        };
        debug_assert!(*total > 0);
        let mut target = rng.below(*total);
        for (id, c) in urn.iter_mut().enumerate() {
            if target < *c {
                *c -= 1;
                *total -= 1;
                return id;
            }
            target -= *c;
        }
        unreachable!("target below the urn total");
    }

    /// Adds one agent in state `id` to the used urn.
    pub(crate) fn add_used(&mut self, id: usize) {
        self.used[id] += 1;
        self.used_total += 1;
    }

    /// Adds `k` agents in state `id` to the used urn at once — the wide
    /// engine's category-deduplicated bulk apply (`k` identical
    /// interactions collapse to one cache lookup and one urn update).
    pub(crate) fn add_used_n(&mut self, id: usize, k: u64) {
        self.used[id] += k;
        self.used_total += k;
    }

    /// Returns one reserved-but-unexecuted agent to the fresh urn (exact
    /// walks that hit convergence mid-round put the tail draws back).
    pub(crate) fn return_fresh(&mut self, id: usize) {
        self.fresh[id] += 1;
        self.fresh_total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_rand::Xoshiro256PlusPlus;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn prefix_always_at_least_one_step() {
        let mut r = rng(1);
        for n in [2u64, 3, 10, 1 << 20] {
            for budget in [1u64, 5, 1000] {
                let (len, collide) = collision_free_prefix(&mut r, n, budget);
                assert!((1..=budget).contains(&len), "n={n} budget={budget}: {len}");
                if collide {
                    assert!(len < budget);
                }
            }
        }
    }

    #[test]
    fn prefix_never_exceeds_half_the_population() {
        // With all agents used a collision is certain: L ≤ n/2.
        let mut r = rng(2);
        for _ in 0..500 {
            let (len, collide) = collision_free_prefix(&mut r, 10, 1000);
            assert!(len <= 5);
            assert!(collide);
        }
    }

    #[test]
    fn prefix_law_matches_brute_force_at_n4() {
        // P(L ≥ 2) = (2·1)/(4·3) = 1/6; budget 2 makes len ∈ {1, 2}.
        let mut r = rng(3);
        let runs = 200_000;
        let mut two = 0u64;
        for _ in 0..runs {
            let (len, _) = collision_free_prefix(&mut r, 4, 2);
            if len == 2 {
                two += 1;
            }
        }
        let p = two as f64 / runs as f64;
        assert!((p - 1.0 / 6.0).abs() < 0.005, "P(L >= 2) = {p}");
    }

    #[test]
    fn prefix_mean_matches_birthday_bound() {
        let n = 1u64 << 16;
        let mut r = rng(4);
        let runs = 2000;
        let total: u64 = (0..runs)
            .map(|_| collision_free_prefix(&mut r, n, u64::MAX).0)
            .sum();
        let mean = total as f64 / runs as f64;
        let expect = (std::f64::consts::PI * n as f64 / 8.0).sqrt();
        assert!(
            (mean / expect - 1.0).abs() < 0.1,
            "mean {mean} vs birthday {expect}"
        );
    }

    #[test]
    fn multiset_draws_partition_the_round() {
        let counts = [100u64, 50, 0, 25];
        let mut s = BatchScratch::default();
        let mut r = rng(5);
        for _ in 0..200 {
            s.begin(&counts);
            s.draw_multiset(&mut r, 40, false);
            s.draw_multiset(&mut r, 40, true);
            assert_eq!(s.init_seq.len(), 40);
            assert_eq!(s.resp_seq.len(), 40);
            assert_eq!(s.fresh_total, 175 - 80);
            // Drawn + remaining reconstruct the original counts.
            let mut back = s.fresh.clone();
            for &id in s.init_seq.iter().chain(&s.resp_seq) {
                back[id as usize] += 1;
            }
            assert_eq!(&back[..], &counts[..]);
            assert!(s.init_seq.iter().all(|&id| id != 2), "empty class drawn");
        }
    }

    #[test]
    fn draw_one_moves_between_urns() {
        let mut s = BatchScratch::default();
        s.begin(&[3, 2]);
        let mut r = rng(6);
        s.draw_multiset(&mut r, 2, false);
        s.add_used(0);
        s.add_used(1);
        assert_eq!(s.used_total, 2);
        assert_eq!(s.fresh_total, 3);
        let id = s.draw_one(&mut r, true);
        assert!(id < 2);
        assert_eq!(s.used_total, 1);
        let id = s.draw_one(&mut r, false);
        assert!(id < 2);
        assert_eq!(s.fresh_total, 2);
        s.return_fresh(id);
        assert_eq!(s.fresh_total, 3);
    }

    #[test]
    fn draw_multiset_matches_reference_decomposition_draw_for_draw() {
        // `draw_multiset` inlines (order-optimized) the conditional
        // decomposition that `pp_rand::multivariate_hypergeometric` is the
        // reference implementation of. With counts already in descending
        // order the visiting orders coincide, so the same RNG stream must
        // produce the exact same per-class counts — pinning the two
        // implementations against drifting apart.
        use pp_rand::multivariate_hypergeometric;
        let counts = [500u64, 300, 200, 200, 7, 1, 0];
        let mut s = BatchScratch::default();
        for seed in 0..50 {
            let mut r1 = rng(seed);
            let mut r2 = rng(seed);
            let draws = 1 + (seed % 200);
            s.begin(&counts);
            s.draw_multiset(&mut r1, draws, false);
            let mut drawn = vec![0u64; counts.len()];
            for &id in &s.init_seq {
                drawn[id as usize] += 1;
            }
            let mut reference = vec![0u64; counts.len()];
            multivariate_hypergeometric(&mut r2, &counts, draws, &mut reference);
            assert_eq!(drawn, reference, "seed {seed}");
        }
    }

    #[test]
    fn multiset_marginals_match_hypergeometric_means() {
        let counts = [500u64, 300, 200];
        let draws = 100u64;
        let mut s = BatchScratch::default();
        let mut r = rng(7);
        let runs = 5000;
        let mut sums = [0u64; 3];
        for _ in 0..runs {
            s.begin(&counts);
            s.draw_multiset(&mut r, draws, false);
            for &id in &s.init_seq {
                sums[id as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = runs as f64 * draws as f64 * c as f64 / 1000.0;
            let got = sums[i] as f64;
            assert!(
                (got / expect - 1.0).abs() < 0.05,
                "class {i}: {got} vs {expect}"
            );
        }
    }
}
