//! The **batch tier**: collision-free hypergeometric rounds à la Berenbrink
//! et al., *Simulating Population Protocols in Sub-Constant Time per
//! Interaction* (ESA 2020).
//!
//! The jump scheduler only helps when null interactions dominate; the batch
//! tier removes the per-interaction cost for *any* transition density. The
//! key observation: in a run of consecutive interactions in which **no agent
//! participates twice**, the interactions touch pairwise-disjoint agents, so
//! they commute — the run's effect on the configuration depends only on *how
//! many* interactions each ordered state pair received, never on their
//! order. The engine therefore processes whole runs at once:
//!
//! 1. **Run length.** The probability that the next interaction is
//!    collision-free, given `u` agents already used, is
//!    `(n−u)(n−u−1) / (n(n−1))`; the maximal collision-free prefix length is
//!    sampled exactly by inverting the running product of these ratios with
//!    a single uniform ([`crate::round::collision_free_prefix_from`]). Its
//!    expectation is the birthday bound `≈ √(πn/8)` — the `Θ(√n)` round
//!    length.
//! 2. **Who interacts.** The `2L` agents of a collision-free run of length
//!    `L` are a uniform without-replacement sample of the population. By
//!    exchangeability, the initiator states are a multivariate
//!    hypergeometric draw of `L` from the counts, the responder states an
//!    `L`-draw from what remains. *How* the two multisets pair into ordered
//!    interactions is the round's [`RoundLaw`](crate::round::RoundLaw) —
//!    a permuted responder sequence (the bit-identical default) or a direct
//!    contingency-table draw (see [`crate::round`] for the pipeline and the
//!    bit-identical-vs-law-equal contract).
//! 3. **Collisions, exactly.** The run ends because the *next* interaction
//!    touches a used agent. Used agents are exchangeable given their state
//!    counts, so the colliding interaction is executed individually from a
//!    two-urn (fresh/used) configuration with exact integer category
//!    weights — the sampled schedule stays distributionally identical to
//!    sequential stepping, collision included. Multi-round episodes keep
//!    the urns alive and chain further segments from the continuation
//!    run-length law.
//!
//! Convergence detection stays **step-exact**: conditioned on the run's pair
//! multiset, the true process orders the interactions as a uniformly random
//! interleaving (sampling without replacement is exchangeable), so when the
//! leader count could touch 1 inside a round the engine shuffles the round
//! into one such interleaving and walks it interaction by interaction (the
//! "exact walk"), stopping at the precise hitting step. Rounds that provably
//! cannot touch 1 skip the walk and apply bulk count deltas.
//!
//! Like the jump scheduler, the batch tier changes no distribution — it
//! consumes the RNG stream differently, so executions are equal in law, not
//! bit-identical; the 4-tier chi-square suite (`tests/batch_equivalence.rs`)
//! and the round-law suite (`tests/round_law.rs`) pin the law.
//!
//! This module owns the tier's public stats and ride-along state; the
//! statistical machinery (urn scratch, run-length inversion, the round
//! laws) lives in [`crate::round`], and the episode orchestration (which
//! needs the pair cache and interning) in
//! [`CountSimulation`](crate::CountSimulation).

use crate::round::BatchScratch;

/// Throughput counters of the batch tier (see
/// [`CountSimulation::batch_stats`](crate::CountSimulation::batch_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch episodes executed (one per `begin`/merge cycle; a multi-round
    /// episode spans several collision-free segments).
    pub episodes: u64,
    /// Interactions applied through collision-free bulk rounds.
    pub bulk_interactions: u64,
    /// Collision interactions executed individually at segment boundaries.
    pub collision_interactions: u64,
    /// Segments resolved by the exact shuffled walk (leader count near 1).
    pub exact_walks: u64,
    /// Conditional draws spent pairing margins into contingency cells
    /// (margin draws are common to every law and not counted).
    pub contingency_draws: u64,
    /// Segments whose responder shuffle was replaced by a contingency
    /// table.
    pub shuffle_skips: u64,
    /// Collision-free segments executed (equals `episodes` for
    /// single-round laws; the per-episode average `episode_segments /
    /// episodes` is the multi-round chain length).
    pub episode_segments: u64,
}

/// Batch-tier state riding along the count engine.
#[derive(Debug, Clone)]
pub(crate) struct BatchState {
    /// User toggle ([`CountSimulation::set_batch_tier`]
    /// (crate::CountSimulation::set_batch_tier)); on by default.
    pub enabled: bool,
    /// Currently executing rounds instead of per-step chunks.
    pub engaged: bool,
    /// Test hook: pinned engaged regardless of the engage/exit heuristics.
    pub forced: bool,
    pub stats: BatchStats,
    pub scratch: BatchScratch,
}

impl BatchState {
    pub(crate) fn new() -> Self {
        Self {
            enabled: true,
            engaged: false,
            forced: false,
            stats: BatchStats::default(),
            scratch: BatchScratch::default(),
        }
    }
}
