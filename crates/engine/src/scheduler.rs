//! Interaction schedulers: who meets whom at each step.

use pp_rand::{Rng64, Xoshiro256PlusPlus};

/// One interaction: an ordered pair of distinct agent indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interaction {
    /// The agent serving as initiator.
    pub initiator: usize,
    /// The agent serving as responder.
    pub responder: usize,
}

impl Interaction {
    /// Creates an interaction.
    ///
    /// # Panics
    ///
    /// Panics if `initiator == responder`.
    pub fn new(initiator: usize, responder: usize) -> Self {
        assert_ne!(initiator, responder, "an agent cannot interact with itself");
        Self {
            initiator,
            responder,
        }
    }

    /// Whether `agent` participates in this interaction.
    pub fn involves(&self, agent: usize) -> bool {
        self.initiator == agent || self.responder == agent
    }
}

/// A source of interactions for a population of `n` agents.
///
/// Schedulers are infinite: [`next_interaction`](Scheduler::next_interaction)
/// always yields. Finite deterministic schedules for tests are applied
/// directly through [`Configuration::apply_schedule`](crate::Configuration::apply_schedule)
/// or wrapped in a cycling [`ReplayScheduler`].
pub trait Scheduler {
    /// Produces the interaction for the next step of a population of size `n`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `n < 2`.
    fn next_interaction(&mut self, n: usize) -> Interaction;
}

/// The uniformly random scheduler Γ: each step selects an ordered pair of
/// distinct agents uniformly at random — `Pr[(u, v)] = 1 / (n(n−1))`.
///
/// This is the scheduler under which all of the paper's results are stated.
///
/// # Example
///
/// ```
/// use pp_engine::{Scheduler, UniformScheduler};
///
/// let mut s = UniformScheduler::seed_from_u64(3);
/// let i = s.next_interaction(10);
/// assert_ne!(i.initiator, i.responder);
/// ```
#[derive(Debug, Clone)]
pub struct UniformScheduler<R = Xoshiro256PlusPlus> {
    rng: R,
}

impl UniformScheduler<Xoshiro256PlusPlus> {
    /// Creates a uniform scheduler driven by Xoshiro256++ seeded from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }
}

impl<R: Rng64> UniformScheduler<R> {
    /// Creates a uniform scheduler from an arbitrary RNG.
    pub fn new(rng: R) -> Self {
        Self { rng }
    }

    /// Gives access to the underlying RNG (e.g. for checkpointing).
    pub fn rng_mut(&mut self) -> &mut R {
        &mut self.rng
    }

    /// Consumes the scheduler and returns the RNG.
    pub fn into_rng(self) -> R {
        self.rng
    }
}

impl<R: Rng64> Scheduler for UniformScheduler<R> {
    #[inline]
    fn next_interaction(&mut self, n: usize) -> Interaction {
        let (a, b) = self.rng.distinct_pair(n);
        Interaction {
            initiator: a,
            responder: b,
        }
    }
}

/// Replays a fixed sequence of interactions, cycling when exhausted.
///
/// Useful for regression tests that need an exact execution, and for
/// adversarial worst-case schedules.
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    steps: Vec<Interaction>,
    pos: usize,
}

impl ReplayScheduler {
    /// Creates a scheduler replaying `steps` in order, cycling at the end.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(steps: Vec<Interaction>) -> Self {
        assert!(!steps.is_empty(), "replay schedule must be non-empty");
        Self { steps, pos: 0 }
    }

    /// The number of recorded interactions before the schedule cycles.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl Scheduler for ReplayScheduler {
    fn next_interaction(&mut self, n: usize) -> Interaction {
        let i = self.steps[self.pos];
        assert!(
            i.initiator < n && i.responder < n,
            "replayed interaction {i:?} out of bounds for population of {n}"
        );
        self.pos = (self.pos + 1) % self.steps.len();
        i
    }
}

/// A deterministic scheduler sweeping ordered pairs in round-robin order:
/// `(0,1), (1,2), …, (n−1,0), (0,2), …` — a fair but adversarially regular
/// schedule that exercises protocols outside the uniformly random regime.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler {
    t: u64,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler starting at phase 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next_interaction(&mut self, n: usize) -> Interaction {
        assert!(n >= 2, "round-robin scheduler needs at least two agents");
        let nn = n as u64;
        let round = self.t / nn; // which offset to use
        let i = (self.t % nn) as usize;
        let offset = (round % (nn - 1) + 1) as usize;
        let j = (i + offset) % n;
        self.t += 1;
        Interaction {
            initiator: i,
            responder: j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "itself")]
    fn interaction_rejects_self_pair() {
        Interaction::new(3, 3);
    }

    #[test]
    fn interaction_involves() {
        let i = Interaction::new(1, 2);
        assert!(i.involves(1));
        assert!(i.involves(2));
        assert!(!i.involves(0));
    }

    #[test]
    fn uniform_scheduler_is_deterministic_per_seed() {
        let mut a = UniformScheduler::seed_from_u64(5);
        let mut b = UniformScheduler::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.next_interaction(7), b.next_interaction(7));
        }
    }

    #[test]
    fn uniform_scheduler_covers_all_ordered_pairs() {
        let mut s = UniformScheduler::seed_from_u64(11);
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let i = s.next_interaction(n);
            seen.insert((i.initiator, i.responder));
        }
        assert_eq!(seen.len(), n * (n - 1));
    }

    #[test]
    fn replay_cycles() {
        let steps = vec![Interaction::new(0, 1), Interaction::new(1, 2)];
        let mut s = ReplayScheduler::new(steps.clone());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.next_interaction(3), steps[0]);
        assert_eq!(s.next_interaction(3), steps[1]);
        assert_eq!(s.next_interaction(3), steps[0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn replay_rejects_empty() {
        ReplayScheduler::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn replay_checks_bounds() {
        let mut s = ReplayScheduler::new(vec![Interaction::new(0, 5)]);
        s.next_interaction(3);
    }

    #[test]
    fn round_robin_visits_every_agent() {
        let mut s = RoundRobinScheduler::new();
        let n = 5;
        let mut participations = vec![0u32; n];
        for _ in 0..(n * (n - 1)) {
            let i = s.next_interaction(n);
            assert_ne!(i.initiator, i.responder);
            participations[i.initiator] += 1;
            participations[i.responder] += 1;
        }
        for (agent, &p) in participations.iter().enumerate() {
            assert!(p > 0, "agent {agent} never participated");
        }
    }

    #[test]
    fn round_robin_never_self_interacts_across_phases() {
        let mut s = RoundRobinScheduler::new();
        for _ in 0..10_000 {
            let i = s.next_interaction(6);
            assert_ne!(i.initiator, i.responder);
        }
    }
}
