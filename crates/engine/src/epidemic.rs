//! One-way epidemics (\[AAE08\]) — the workhorse process behind every
//! `O(log n)` bound in the paper.
//!
//! Given a sub-population `V' ⊆ V` and a source `r ∈ V'`, the epidemic
//! function is: at step 0 only `r` is infected; whenever an interaction
//! involves an infected agent, every participant *belonging to `V'`* becomes
//! infected; infected agents stay infected (paper, Section 2).
//!
//! The paper's Lemma 2 bounds the tail of the completion time:
//!
//! > `Pr[I_{V',r,Γ}(2⌈n/n'⌉·t) ≠ V'] ≤ n·e^{−t/n}` for `n' = |V'|`.
//!
//! [`Epidemic`] simulates the process directly (it is much lighter than a
//! full protocol simulation), records the infection curve, and
//! [`lemma2_bound`] evaluates the paper's closed-form tail bound for
//! comparison.

use crate::EngineError;
use pp_rand::Rng64;

/// A one-way epidemic process over a population of `n` agents with a
/// designated member sub-population and source.
///
/// # Example
///
/// ```
/// use pp_engine::epidemic::Epidemic;
/// use pp_rand::Xoshiro256PlusPlus;
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let mut ep = Epidemic::whole_population(100, 0).unwrap();
/// let steps = ep.run_to_completion(&mut rng, u64::MAX).unwrap();
/// assert!(steps > 0);
/// assert!(ep.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct Epidemic {
    member: Vec<bool>,
    infected: Vec<bool>,
    member_count: usize,
    infected_count: usize,
    steps: u64,
}

impl Epidemic {
    /// Creates an epidemic over the whole population `V' = V` from `source`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] if `n < 2` and
    /// [`EngineError::AgentOutOfBounds`] if `source >= n`.
    pub fn whole_population(n: usize, source: usize) -> Result<Self, EngineError> {
        Self::new(vec![true; n], source)
    }

    /// Creates an epidemic over the sub-population `V' = {i : member[i]}`
    /// from `source`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PopulationTooSmall`] if fewer than two agents
    /// exist overall, [`EngineError::AgentOutOfBounds`] if `source` is out of
    /// bounds or not a member.
    pub fn new(member: Vec<bool>, source: usize) -> Result<Self, EngineError> {
        let n = member.len();
        if n < 2 {
            return Err(EngineError::PopulationTooSmall { n });
        }
        if source >= n || !member[source] {
            return Err(EngineError::AgentOutOfBounds { agent: source, n });
        }
        let member_count = member.iter().filter(|&&m| m).count();
        let mut infected = vec![false; n];
        infected[source] = true;
        Ok(Self {
            member,
            infected,
            member_count,
            infected_count: 1,
            steps: 0,
        })
    }

    /// Population size `n`.
    pub fn population(&self) -> usize {
        self.member.len()
    }

    /// Sub-population size `n' = |V'|`.
    pub fn member_count(&self) -> usize {
        self.member_count
    }

    /// Number of currently infected agents.
    pub fn infected_count(&self) -> usize {
        self.infected_count
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether agent `v` is infected.
    pub fn is_infected(&self, v: usize) -> bool {
        self.infected.get(v).copied().unwrap_or(false)
    }

    /// Whether every member is infected (`I(t) = V'`).
    pub fn is_complete(&self) -> bool {
        self.infected_count == self.member_count
    }

    /// Executes one uniformly random interaction of the epidemic.
    ///
    /// Returns `true` if a new agent became infected.
    pub fn step<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> bool {
        let n = self.member.len();
        let (u, v) = rng.distinct_pair(n);
        self.steps += 1;
        let any_infected = self.infected[u] || self.infected[v];
        if !any_infected {
            return false;
        }
        let mut newly = false;
        for w in [u, v] {
            if self.member[w] && !self.infected[w] {
                self.infected[w] = true;
                self.infected_count += 1;
                newly = true;
            }
        }
        newly
    }

    /// Runs until all members are infected or `max_steps` interactions have
    /// been executed; returns the total step count on completion.
    ///
    /// # Errors
    ///
    /// Returns `Err(steps_executed)` if the budget was exhausted first.
    pub fn run_to_completion<R: Rng64 + ?Sized>(
        &mut self,
        rng: &mut R,
        max_steps: u64,
    ) -> Result<u64, u64> {
        while !self.is_complete() {
            if self.steps >= max_steps {
                return Err(self.steps);
            }
            self.step(rng);
        }
        Ok(self.steps)
    }

    /// Runs to completion recording the infection curve: a vector of
    /// `(step, infected_count)` at every new infection.
    ///
    /// # Errors
    ///
    /// Returns `Err(steps_executed)` if the budget was exhausted first.
    pub fn run_with_curve<R: Rng64 + ?Sized>(
        &mut self,
        rng: &mut R,
        max_steps: u64,
    ) -> Result<Vec<(u64, usize)>, u64> {
        let mut curve = vec![(self.steps, self.infected_count)];
        while !self.is_complete() {
            if self.steps >= max_steps {
                return Err(self.steps);
            }
            if self.step(rng) {
                curve.push((self.steps, self.infected_count));
            }
        }
        Ok(curve)
    }
}

/// The right-hand side of the paper's Lemma 2:
/// `Pr[I(2⌈n/n'⌉·t) ≠ V'] ≤ n·e^{−t/n}` (values above 1 are clipped).
///
/// # Panics
///
/// Panics if `n == 0` or `n_prime == 0`.
pub fn lemma2_bound(n: usize, t: f64) -> f64 {
    assert!(n > 0, "population size must be positive");
    (n as f64 * (-t / n as f64).exp()).min(1.0)
}

/// The step horizon `2⌈n/n'⌉·t` at which Lemma 2 evaluates the epidemic.
///
/// # Panics
///
/// Panics if `n_prime == 0`.
pub fn lemma2_horizon(n: usize, n_prime: usize, t: u64) -> u64 {
    assert!(n_prime > 0, "sub-population must be non-empty");
    2 * (n as u64).div_ceil(n_prime as u64) * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_rand::{SeedSequence, Xoshiro256PlusPlus};

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(Epidemic::whole_population(1, 0).is_err());
        assert!(Epidemic::whole_population(10, 10).is_err());
        // Source must be a member.
        let mut member = vec![true; 4];
        member[2] = false;
        assert!(Epidemic::new(member.clone(), 2).is_err());
        assert!(Epidemic::new(member, 0).is_ok());
    }

    #[test]
    fn infection_is_monotone_and_completes() {
        let mut ep = Epidemic::whole_population(50, 3).unwrap();
        let mut r = rng(1);
        let mut last = ep.infected_count();
        while !ep.is_complete() {
            ep.step(&mut r);
            assert!(ep.infected_count() >= last);
            last = ep.infected_count();
        }
        assert_eq!(ep.infected_count(), 50);
        assert!(ep.is_infected(3));
    }

    #[test]
    fn subpopulation_epidemic_only_infects_members() {
        let n = 40;
        let member: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut ep = Epidemic::new(member.clone(), 0).unwrap();
        let mut r = rng(2);
        ep.run_to_completion(&mut r, u64::MAX).unwrap();
        for (i, &is_member) in member.iter().enumerate() {
            assert_eq!(ep.is_infected(i), is_member, "agent {i}");
        }
    }

    #[test]
    fn completion_time_scales_like_n_log_n() {
        // Mean completion ≈ 2 n ln n / (something Θ(1)); just check the
        // parallel time grows logarithmically-ish: t(4096)/t(256) should be
        // close to lg ratio, certainly below linear ratio.
        let seeds = SeedSequence::new(7);
        let mean_steps = |n: usize| -> f64 {
            let mut total = 0u64;
            for i in 0..10 {
                let mut ep = Epidemic::whole_population(n, 0).unwrap();
                let mut r = rng(seeds.seed_at(i + n as u64));
                total += ep.run_to_completion(&mut r, u64::MAX).unwrap();
            }
            total as f64 / 10.0
        };
        let t256 = mean_steps(256) / 256.0;
        let t4096 = mean_steps(4096) / 4096.0;
        let ratio = t4096 / t256;
        // ln(4096)/ln(256) = 1.5; allow wide slack but exclude linear (16x).
        assert!(ratio > 1.0 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn curve_is_increasing_and_ends_complete() {
        let mut ep = Epidemic::whole_population(64, 0).unwrap();
        let mut r = rng(3);
        let curve = ep.run_with_curve(&mut r, u64::MAX).unwrap();
        assert_eq!(curve.first().unwrap().1, 1);
        assert_eq!(curve.last().unwrap().1, 64);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn budget_exhaustion_reports_steps() {
        let mut ep = Epidemic::whole_population(1000, 0).unwrap();
        let mut r = rng(4);
        let res = ep.run_to_completion(&mut r, 10);
        assert_eq!(res, Err(10));
    }

    #[test]
    fn lemma2_bound_shapes() {
        // Clipped at 1 for small t; decays exponentially in t/n.
        assert_eq!(lemma2_bound(100, 0.0), 1.0);
        let b1 = lemma2_bound(100, 1000.0);
        let b2 = lemma2_bound(100, 2000.0);
        assert!(b2 < b1);
        assert!((b2 / b1 - (-10.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn lemma2_horizon_formula() {
        assert_eq!(lemma2_horizon(100, 100, 5), 10);
        assert_eq!(lemma2_horizon(100, 50, 5), 20);
        assert_eq!(lemma2_horizon(100, 33, 5), 40); // ceil(100/33)=4
    }

    #[test]
    fn empirical_tail_is_below_lemma2_bound() {
        // For t = 6n the bound is n e^{-6} ≈ 0.25 at n=100; empirically the
        // epidemic at horizon 2*t = 12n steps virtually always completes.
        let n = 100;
        let t = 6 * n as u64;
        let horizon = lemma2_horizon(n, n, t);
        let seeds = SeedSequence::new(11);
        let trials = 200;
        let mut failures = 0;
        for i in 0..trials {
            let mut ep = Epidemic::whole_population(n, 0).unwrap();
            let mut r = rng(seeds.seed_at(i));
            if ep.run_to_completion(&mut r, horizon).is_err() {
                failures += 1;
            }
        }
        let p_fail = failures as f64 / trials as f64;
        let bound = lemma2_bound(n, t as f64);
        assert!(
            p_fail <= bound + 0.05,
            "empirical {p_fail} exceeds bound {bound}"
        );
    }
}
