//! The null-skipping **jump scheduler** behind the count engine's long-tail
//! performance.
//!
//! Most of a leader-election run — and, for sparse-transition protocols,
//! almost all of it — consists of *null* interactions: ordered state pairs
//! whose compiled transition leaves both participants unchanged. A null
//! interaction costs a full sampler draw yet does nothing to the
//! configuration, so a fratricide run at `n = 2^28` spends `Θ(n²)` steps to
//! perform only `n − 1` state changes. The jump scheduler removes that waste
//! *exactly*:
//!
//! 1. Partition the ordered state pairs into the **known-null set** `N`
//!    (pairs compiled as null — see [`crate::compiled`]) and the rest (the
//!    *active* candidates: genuinely non-null pairs plus pairs not compiled
//!    yet, whose effect is unknown). Every pair `(s, t)` carries the weight
//!    of the uniformly random scheduler,
//!    `w(s, t) = c_s · (c_t − [s = t])`, summing to `W_total = n(n−1)`.
//! 2. While the configuration is unchanged, each raw draw lands in `N`
//!    independently with probability `W_null / W_total`. The length of the
//!    run of consecutive known-null draws is therefore
//!    `Geometric(p = W_active / W_total)` — one [`pp_rand::Geometric`]
//!    sample replaces the whole run, advancing the step counter in `O(1)`.
//! 3. The interaction that ends the run is distributed over the active
//!    candidates with probability `w(s, t) / W_active`; it is drawn with one
//!    integer uniform and an exact scan of [`NullLedger`] (below) and then
//!    executed normally. If it turns out to be an uncompiled *null* pair,
//!    that is still the correct draw — the true chain would have drawn it
//!    too; it merely joins `N` afterwards.
//!
//! Conditioned on the configuration, raw scheduler draws are i.i.d. and null
//! draws change nothing, so this telescoping is **distribution-exact**: the
//! law of every future configuration (and of the exact step count at which
//! each change happens) is identical to the per-step engine's. The one
//! approximation anywhere in the pipeline is the `f64` resolution of the
//! geometric inverse-CDF sample, the same caveat `Geometric` itself carries.
//! The jump path does consume a *different* RNG stream than per-step
//! execution (two words per episode instead of one word per interaction), so
//! its executions are equal in law, not bit-identical — the equivalence
//! suite pins the law, and disabling the scheduler (or the compiled cache,
//! which it requires) falls back to the bit-exact per-step path.
//!
//! # The ledger
//!
//! [`NullLedger`] maintains `N` as a lexicographically sorted pair list with
//! per-pair weights, a per-state adjacency index, and the running total
//! `W_null`. Between configuration changes nothing moves; after an executed
//! interaction only pairs touching the (at most four) states whose counts
//! changed are recomputed — `O(deg)` per episode, driven by the engine's
//! count deltas. Sampling an active pair costs one `O(K + deg)` scan over
//! the `K` interned states: row `s` contributes active weight
//! `c_s · (n − 1 − Σ_{t : (s,t) ∈ N} (c_t − [s = t]))`, and the responder
//! is located inside the row after dividing out `c_s`. Both scans are exact
//! integer arithmetic; no floating point touches the pair selection.
//!
//! The engine engages the scheduler only when skipping pays: tier reviews
//! rebuild the ledger and compare
//! `W_active · jump_engage_factor ≤ W_total` (default factor 8, i.e. an
//! expected skip of ≥ 8 interactions per episode), with hysteresis on exit —
//! both factors are [`EngineConfig`](crate::EngineConfig) fields. See
//! [`CountSimulation::set_jump_scheduler`](crate::CountSimulation::set_jump_scheduler)
//! for the engine-level contract; an engaged scheduler preempts the batch
//! tier in dispatch, since a null-dominated configuration telescopes in
//! `O(1)` per episode.

/// The known-null pair set with scheduler weights: membership, per-pair and
/// total weight, per-state adjacency, and exact active-pair sampling.
///
/// Weights are meaningful only while the ledger is *synced* (rebuilt or
/// incrementally updated against the current counts); registration of newly
/// discovered null pairs marks it dirty and the next sync rebuilds.
#[derive(Debug, Clone, Default)]
pub(crate) struct NullLedger {
    /// Known-null ordered state pairs, sorted lexicographically.
    pairs: Vec<(u32, u32)>,
    /// Scheduler weight of each pair under the counts of the last sync.
    weights: Vec<u64>,
    /// `row_start[s] .. row_start[s + 1]` indexes the pairs with initiator
    /// state `s` (rows are contiguous in the sorted order).
    row_start: Vec<u32>,
    /// For each state: indices (into `pairs`) of every pair containing it,
    /// as initiator or responder; `(s, s)` appears once.
    by_state: Vec<Vec<u32>>,
    /// Total weight of the known-null set under the counts of the last sync.
    w_null: u64,
    /// Pairs were registered since the last rebuild: weights, `row_start`,
    /// and `by_state` are stale until [`rebuild`](Self::rebuild) runs.
    dirty: bool,
}

/// Scheduler weight of the ordered state pair `(s, t)`: the number of
/// ordered agent pairs realizing it, `c_s · c_t` for distinct states and
/// `c_s · (c_s − 1)` for a self-pair.
#[inline]
fn pair_weight(counts: &[u64], s: usize, t: usize) -> u64 {
    // saturating: an unoccupied self-pair has count 0, not weight 0·(0−1).
    counts[s] * counts[t].saturating_sub(u64::from(s == t))
}

impl NullLedger {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Number of known-null pairs.
    pub(crate) fn len(&self) -> usize {
        self.pairs.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total known-null weight as of the last sync.
    pub(crate) fn w_null(&self) -> u64 {
        self.w_null
    }

    pub(crate) fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Forgets everything (used when the compiled cache deactivates or the
    /// scheduler is turned off).
    pub(crate) fn clear(&mut self) {
        self.pairs.clear();
        self.weights.clear();
        self.row_start.clear();
        self.by_state.clear();
        self.w_null = 0;
        self.dirty = false;
    }

    /// Registers a newly compiled null pair. Weights and indexes go stale
    /// (`dirty`) until the next [`rebuild`](Self::rebuild) — which is also
    /// where ordering and deduplication happen, keeping each registration
    /// `O(1)` (bulk seeding of `m` pairs costs one `O(m log m)` rebuild
    /// instead of `m` sorted insertions).
    pub(crate) fn register(&mut self, s: usize, t: usize) {
        self.pairs.push((s as u32, t as u32));
        self.dirty = true;
    }

    /// Marks the weights stale so the next [`sync`](Self::sync) rebuilds —
    /// used by the engine when counts change outside an episode (manual
    /// per-step execution between batched runs).
    pub(crate) fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Recomputes every pair weight, `w_null`, and the row/adjacency indexes
    /// against `counts` (`counts.len()` = number of interned states).
    pub(crate) fn rebuild(&mut self, counts: &[u64]) {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        self.weights.clear();
        self.weights.resize(self.pairs.len(), 0);
        let states = counts.len();
        self.row_start.clear();
        self.row_start.resize(states + 1, 0);
        for &(s, _) in &self.pairs {
            self.row_start[s as usize + 1] += 1;
        }
        for i in 0..states {
            self.row_start[i + 1] += self.row_start[i];
        }
        if self.by_state.len() < states {
            self.by_state.resize(states, Vec::new());
        }
        for adj in &mut self.by_state {
            adj.clear();
        }
        self.w_null = 0;
        for (i, &(s, t)) in self.pairs.iter().enumerate() {
            let w = pair_weight(counts, s as usize, t as usize);
            self.weights[i] = w;
            self.w_null += w;
            self.by_state[s as usize].push(i as u32);
            if s != t {
                self.by_state[t as usize].push(i as u32);
            }
        }
        self.dirty = false;
    }

    /// Rebuilds only if [`register`](Self::register) ran since the last
    /// rebuild.
    pub(crate) fn sync(&mut self, counts: &[u64]) {
        if self.dirty {
            self.rebuild(counts);
        }
    }

    /// Refreshes the weights of every known-null pair containing state `x`
    /// after its count changed, keeping `w_null` exact. `O(deg(x))`;
    /// idempotent, so the engine may call it once per touched state without
    /// deduplicating pairs shared between two touched states.
    ///
    /// Must not be called while dirty (the engine syncs per episode).
    pub(crate) fn on_count_change(&mut self, x: usize, counts: &[u64]) {
        debug_assert!(!self.dirty);
        let Some(adj) = self.by_state.get(x) else {
            return;
        };
        for &i in adj {
            let i = i as usize;
            let (s, t) = self.pairs[i];
            let w = pair_weight(counts, s as usize, t as usize);
            self.w_null = self.w_null - self.weights[i] + w;
            self.weights[i] = w;
        }
    }

    /// Locates the active pair at position `u ∈ [0, W_active)` of the
    /// active-candidate distribution: pairs ordered lexicographically, each
    /// occupying a block of `w(s, t)` positions, known-null pairs excluded.
    ///
    /// Exact integer arithmetic throughout: rows are skipped by their active
    /// weight `c_s · (n − 1 − null_row)`, and within the chosen row the
    /// responder offset is `u_row / c_s` against responder weights
    /// `c_t − [t = s]` with null partners zeroed. `O(K + deg)`.
    ///
    /// Requires a synced ledger and `u < W_active`.
    pub(crate) fn sample_active(&self, counts: &[u64], n: u64, mut u: u64) -> (usize, usize) {
        debug_assert!(!self.dirty);
        let nm1 = n - 1;
        for s in 0..counts.len() {
            let cs = counts[s];
            if cs == 0 {
                continue;
            }
            let row = self.row(s);
            let mut null_row = 0u64;
            for &(_, t) in row {
                null_row += counts[t as usize] - u64::from(t as usize == s);
            }
            let active_row = cs * (nm1 - null_row);
            if u >= active_row {
                u -= active_row;
                continue;
            }
            // Inside row s: responder offset in units of one agent pair.
            let mut tau = u / cs;
            let mut nulls = row.iter();
            let mut next_null = nulls.next();
            for (t, &ct) in counts.iter().enumerate() {
                let mut w = ct - u64::from(t == s);
                if let Some(&&(_, nt)) = next_null.as_ref() {
                    if nt as usize == t {
                        w = 0;
                        next_null = nulls.next();
                    }
                }
                if tau < w {
                    return (s, t);
                }
                tau -= w;
            }
            debug_assert!(false, "active row weight exhausted before a responder");
        }
        unreachable!("u must lie below the total active weight");
    }

    /// The contiguous slice of known-null pairs with initiator `s`.
    fn row(&self, s: usize) -> &[(u32, u32)] {
        if s + 1 >= self.row_start.len() {
            return &[];
        }
        &self.pairs[self.row_start[s] as usize..self.row_start[s + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force enumeration of the active distribution: every ordered
    /// pair in lexicographic order with its weight, known-nulls excluded.
    fn brute_blocks(counts: &[u64], nulls: &[(usize, usize)]) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for s in 0..counts.len() {
            for t in 0..counts.len() {
                if nulls.contains(&(s, t)) {
                    continue;
                }
                let w = counts[s] * counts[t].saturating_sub(u64::from(s == t));
                if w > 0 {
                    out.push((s, t, w));
                }
            }
        }
        out
    }

    fn ledger_with(nulls: &[(usize, usize)], counts: &[u64]) -> NullLedger {
        let mut ledger = NullLedger::new();
        for &(s, t) in nulls {
            ledger.register(s, t);
        }
        ledger.rebuild(counts);
        ledger
    }

    #[test]
    fn w_null_matches_brute_force() {
        let counts = [5u64, 0, 3, 2];
        let nulls = [(0usize, 0usize), (0, 2), (2, 0), (3, 3), (1, 2)];
        let ledger = ledger_with(&nulls, &counts);
        let expect: u64 = nulls
            .iter()
            .map(|&(s, t)| counts[s] * counts[t].saturating_sub(u64::from(s == t)))
            .sum();
        assert_eq!(ledger.w_null(), expect);
        assert_eq!(ledger.len(), 5);
    }

    #[test]
    fn register_dedups_and_sorts_at_rebuild() {
        let mut ledger = NullLedger::new();
        ledger.register(2, 1);
        ledger.register(0, 3);
        ledger.register(2, 1);
        ledger.register(0, 0);
        assert!(ledger.is_dirty());
        ledger.rebuild(&[1, 1, 1, 1]);
        assert!(!ledger.is_dirty());
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.row(0).len(), 2);
        assert_eq!(ledger.row(2), &[(2, 1)]);
    }

    #[test]
    fn sample_active_enumerates_exactly_the_active_distribution() {
        // For every u in [0, W_active), sample_active must return the pair
        // whose block contains u — i.e. each active pair is hit exactly
        // w(s, t) times. This pins the sampler to the exact law.
        let counts = [4u64, 1, 0, 3, 2];
        let n: u64 = counts.iter().sum();
        let nulls = [(0usize, 0usize), (0, 3), (3, 0), (4, 4), (3, 3), (1, 4)];
        let ledger = ledger_with(&nulls, &counts);
        let blocks = brute_blocks(&counts, &nulls);
        let w_active: u64 = blocks.iter().map(|&(_, _, w)| w).sum();
        assert_eq!(ledger.w_null() + w_active, n * (n - 1));
        let mut u = 0u64;
        for &(s, t, w) in &blocks {
            for _ in 0..w {
                assert_eq!(ledger.sample_active(&counts, n, u), (s, t), "u = {u}");
                u += 1;
            }
        }
        assert_eq!(u, w_active);
    }

    #[test]
    fn on_count_change_tracks_weight_updates() {
        let mut counts = vec![4u64, 1, 3];
        let nulls = [(0usize, 1usize), (1, 0), (2, 2)];
        let mut ledger = ledger_with(&nulls, &counts);
        // Move one agent 2 -> 0 and resync only the touched states.
        counts[2] -= 1;
        counts[0] += 1;
        ledger.on_count_change(2, &counts);
        ledger.on_count_change(0, &counts);
        let mut fresh = ledger_with(&nulls, &counts);
        fresh.rebuild(&counts);
        assert_eq!(ledger.w_null(), fresh.w_null());
    }
}
