//! Engine observability: structured events, unified metrics, and trajectory
//! sampling for [`CountSimulation`](crate::CountSimulation) and
//! [`WideSimulation`](crate::WideSimulation).
//!
//! The engine's tier dispatch is invisible from the outside: a run reports
//! end-state numbers (`steps`, final counts, the two ad-hoc stats structs)
//! but not *where the time went* or *what the trajectory looked like*. This
//! module adds three observation surfaces:
//!
//! * [`EngineObserver`] — an attachable hook that sinks structured
//!   [`EngineEvent`]s (tier transitions, jump engage/disengage with
//!   hysteresis context, batch-round episodes with their law and segment
//!   shape, compactions, snapshot/resume ops), accounts per-tier
//!   interactions and wall time in a monotonic-clock [`TierTimeline`], and
//!   optionally samples a [`TrajectorySampler`] trace.
//! * [`EngineMetrics`] — one unified snapshot of everything the engine can
//!   report (superseding the `jump_stats()`/`batch_stats()` split, which
//!   remain as thin shims), serializable to JSON by hand (this workspace
//!   takes no serde dependency) and parseable back for round-trip checks.
//! * A JSONL event-log encoding — one [`EngineEvent`] per line via
//!   [`EngineEvent::to_json_line`] / [`EngineEvent::parse_json_line`].
//!
//! # The no-RNG / bit-identity contract
//!
//! Observation consumes **no randomness** and never changes what the engine
//! executes: a simulation with an observer attached produces bit-identical
//! trajectories, final counts, step counts, and
//! [`snapshot`](crate::CountSimulation::snapshot) bytes to its detached
//! twin, on all four tiers and on the wide lane engine (pinned by the
//! `tests/obs_identity.rs` suite). The disabled path costs one predictable
//! branch at episode/review boundaries — never inside the per-interaction
//! hot loops. Trajectory sampling only subdivides *per-step* chunk windows
//! (per-step draws are identical per step, so window partitioning is
//! invisible); jump and batch episode budgets are never capped for a sample,
//! so on those tiers samples land on the first episode boundary at or past
//! each grid point.
//!
//! # Event schema (JSONL)
//!
//! Every line is one flat JSON object with an `"event"` discriminator and a
//! `"step"` field (the engine step count when the event fired):
//!
//! | `event` | extra fields |
//! |---------|--------------|
//! | `tier_transition` | `from`, `to` (tier names) |
//! | `jump_engage` | `w_active`, `w_total` (scheduler weights at the probe) |
//! | `jump_disengage` | `w_active`, `w_total`, `episodes`, `skipped` (cumulative) |
//! | `batch_engage` | `support`, `expected_run` |
//! | `batch_exit` | `support`, `expected_run` |
//! | `batch_episode` | `law`, `segments`, `bulk`, `collision`, `walked` |
//! | `compaction` | `live_before`, `live_after` (interned state ids) |
//! | `snapshot` | `bytes` (serialized size) |
//! | `resumed` | — |
//! | `lane_retired` | `lane` (wide engine: lane index) |
//! | `lane_spilled` | `lane` (wide engine: lane index) |

use crate::batch::BatchStats;
use crate::round::LawMode;
use crate::tier::{EngineTier, JumpStats, TierUsage};
use crate::trace::Trace;

/// Default cap on buffered events per observer; past it events are counted
/// in [`EngineObserver::dropped`] instead of stored, bounding memory on
/// arbitrarily long runs.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// One structured engine event (see the [module docs](self) for the JSONL
/// schema). Events fire at episode/review boundaries only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// The active execution tier changed across a review or episode.
    TierTransition {
        /// Engine step count when the transition happened.
        step: u64,
        /// Tier before the transition.
        from: EngineTier,
        /// Tier after the transition.
        to: EngineTier,
    },
    /// The jump scheduler engaged: known-null pairs carry enough scheduler
    /// weight that telescoping pays.
    JumpEngage {
        /// Engine step count at the engaging review.
        step: u64,
        /// Active (non-known-null) scheduler weight at the probe.
        w_active: u64,
        /// Total scheduler weight `n(n−1)`.
        w_total: u64,
    },
    /// The jump scheduler disengaged through its hysteresis exit.
    JumpDisengage {
        /// Engine step count at the disengaging episode.
        step: u64,
        /// Active scheduler weight that tripped the exit rule.
        w_active: u64,
        /// Total scheduler weight `n(n−1)`.
        w_total: u64,
        /// Cumulative jump episodes executed so far.
        episodes: u64,
        /// Cumulative null interactions telescoped so far.
        skipped: u64,
    },
    /// The batch tier engaged (live support small enough for
    /// hypergeometric rounds to pay).
    BatchEngage {
        /// Engine step count at the engaging review.
        step: u64,
        /// Live support at the review.
        support: u64,
        /// Expected collision-free run length at this population.
        expected_run: u64,
    },
    /// The batch tier disengaged through its hysteresis exit.
    BatchExit {
        /// Engine step count at the disengaging review.
        step: u64,
        /// Live support at the review.
        support: u64,
        /// Expected collision-free run length at this population.
        expected_run: u64,
    },
    /// One batch-tier round episode completed.
    BatchEpisode {
        /// Engine step count after the episode.
        step: u64,
        /// Round law the episode drew from.
        law: LawMode,
        /// Collision-free segments chained in this episode.
        segments: u64,
        /// Bulk (collision-free) interactions applied.
        bulk: u64,
        /// Whether the episode ended in a collision interaction.
        collision: bool,
        /// Whether any segment ran the exact shuffled walk (leader count
        /// near 1).
        walked: bool,
    },
    /// A tier review compacted the interned state-id space.
    Compaction {
        /// Engine step count at the compacting review.
        step: u64,
        /// Interned ids before compaction.
        live_before: u64,
        /// Interned ids after compaction.
        live_after: u64,
    },
    /// A snapshot was serialized.
    SnapshotTaken {
        /// Engine step count the snapshot captures.
        step: u64,
        /// Serialized snapshot size in bytes.
        bytes: u64,
    },
    /// The simulation was resumed from a snapshot (reported when an
    /// observer is attached to a resumed engine).
    Resumed {
        /// Engine step count the snapshot restored.
        step: u64,
    },
    /// A wide-engine lane finished (converged or exhausted its budget) and
    /// left the lane set.
    LaneRetired {
        /// The retiring lane's steps at retirement.
        step: u64,
        /// Original lane index.
        lane: u64,
    },
    /// A wide-engine lane was spilled out for scalar completion
    /// (null-dominated under the auto policy).
    LaneSpilled {
        /// The spilled lane's steps at the spill.
        step: u64,
        /// Original lane index.
        lane: u64,
    },
}

impl EngineEvent {
    /// The engine step count the event fired at.
    pub fn step(&self) -> u64 {
        match *self {
            EngineEvent::TierTransition { step, .. }
            | EngineEvent::JumpEngage { step, .. }
            | EngineEvent::JumpDisengage { step, .. }
            | EngineEvent::BatchEngage { step, .. }
            | EngineEvent::BatchExit { step, .. }
            | EngineEvent::BatchEpisode { step, .. }
            | EngineEvent::Compaction { step, .. }
            | EngineEvent::SnapshotTaken { step, .. }
            | EngineEvent::Resumed { step }
            | EngineEvent::LaneRetired { step, .. }
            | EngineEvent::LaneSpilled { step, .. } => step,
        }
    }

    /// The event's JSONL discriminator (the `"event"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::TierTransition { .. } => "tier_transition",
            EngineEvent::JumpEngage { .. } => "jump_engage",
            EngineEvent::JumpDisengage { .. } => "jump_disengage",
            EngineEvent::BatchEngage { .. } => "batch_engage",
            EngineEvent::BatchExit { .. } => "batch_exit",
            EngineEvent::BatchEpisode { .. } => "batch_episode",
            EngineEvent::Compaction { .. } => "compaction",
            EngineEvent::SnapshotTaken { .. } => "snapshot",
            EngineEvent::Resumed { .. } => "resumed",
            EngineEvent::LaneRetired { .. } => "lane_retired",
            EngineEvent::LaneSpilled { .. } => "lane_spilled",
        }
    }

    /// Serializes the event as one JSON line (no trailing newline) in the
    /// [module-level schema](self).
    pub fn to_json_line(&self) -> String {
        let head = |step: u64| format!("{{\"event\":\"{}\",\"step\":{step}", self.kind());
        match *self {
            EngineEvent::TierTransition { step, from, to } => {
                format!("{},\"from\":\"{from}\",\"to\":\"{to}\"}}", head(step))
            }
            EngineEvent::JumpEngage {
                step,
                w_active,
                w_total,
            } => format!(
                "{},\"w_active\":{w_active},\"w_total\":{w_total}}}",
                head(step)
            ),
            EngineEvent::JumpDisengage {
                step,
                w_active,
                w_total,
                episodes,
                skipped,
            } => format!(
                "{},\"w_active\":{w_active},\"w_total\":{w_total},\"episodes\":{episodes},\"skipped\":{skipped}}}",
                head(step)
            ),
            EngineEvent::BatchEngage {
                step,
                support,
                expected_run,
            } => format!(
                "{},\"support\":{support},\"expected_run\":{expected_run}}}",
                head(step)
            ),
            EngineEvent::BatchExit {
                step,
                support,
                expected_run,
            } => format!(
                "{},\"support\":{support},\"expected_run\":{expected_run}}}",
                head(step)
            ),
            EngineEvent::BatchEpisode {
                step,
                law,
                segments,
                bulk,
                collision,
                walked,
            } => format!(
                "{},\"law\":\"{law}\",\"segments\":{segments},\"bulk\":{bulk},\"collision\":{collision},\"walked\":{walked}}}",
                head(step)
            ),
            EngineEvent::Compaction {
                step,
                live_before,
                live_after,
            } => format!(
                "{},\"live_before\":{live_before},\"live_after\":{live_after}}}",
                head(step)
            ),
            EngineEvent::SnapshotTaken { step, bytes } => {
                format!("{},\"bytes\":{bytes}}}", head(step))
            }
            EngineEvent::Resumed { step } => format!("{}}}", head(step)),
            EngineEvent::LaneRetired { step, lane } => {
                format!("{},\"lane\":{lane}}}", head(step))
            }
            EngineEvent::LaneSpilled { step, lane } => {
                format!("{},\"lane\":{lane}}}", head(step))
            }
        }
    }

    /// Parses one JSON line produced by [`to_json_line`]
    /// (Self::to_json_line); `None` on any malformation. Together they form
    /// the round-trip the schema tests pin.
    pub fn parse_json_line(line: &str) -> Option<Self> {
        let kind = scan_str(line, "\"event\"")?;
        let step = scan_u64(line, "\"step\"")?;
        Some(match kind.as_str() {
            "tier_transition" => EngineEvent::TierTransition {
                step,
                from: parse_tier(&scan_str(line, "\"from\"")?)?,
                to: parse_tier(&scan_str(line, "\"to\"")?)?,
            },
            "jump_engage" => EngineEvent::JumpEngage {
                step,
                w_active: scan_u64(line, "\"w_active\"")?,
                w_total: scan_u64(line, "\"w_total\"")?,
            },
            "jump_disengage" => EngineEvent::JumpDisengage {
                step,
                w_active: scan_u64(line, "\"w_active\"")?,
                w_total: scan_u64(line, "\"w_total\"")?,
                episodes: scan_u64(line, "\"episodes\"")?,
                skipped: scan_u64(line, "\"skipped\"")?,
            },
            "batch_engage" => EngineEvent::BatchEngage {
                step,
                support: scan_u64(line, "\"support\"")?,
                expected_run: scan_u64(line, "\"expected_run\"")?,
            },
            "batch_exit" => EngineEvent::BatchExit {
                step,
                support: scan_u64(line, "\"support\"")?,
                expected_run: scan_u64(line, "\"expected_run\"")?,
            },
            "batch_episode" => EngineEvent::BatchEpisode {
                step,
                law: parse_law(&scan_str(line, "\"law\"")?)?,
                segments: scan_u64(line, "\"segments\"")?,
                bulk: scan_u64(line, "\"bulk\"")?,
                collision: scan_bool(line, "\"collision\"")?,
                walked: scan_bool(line, "\"walked\"")?,
            },
            "compaction" => EngineEvent::Compaction {
                step,
                live_before: scan_u64(line, "\"live_before\"")?,
                live_after: scan_u64(line, "\"live_after\"")?,
            },
            "snapshot" => EngineEvent::SnapshotTaken {
                step,
                bytes: scan_u64(line, "\"bytes\"")?,
            },
            "resumed" => EngineEvent::Resumed { step },
            "lane_retired" => EngineEvent::LaneRetired {
                step,
                lane: scan_u64(line, "\"lane\"")?,
            },
            "lane_spilled" => EngineEvent::LaneSpilled {
                step,
                lane: scan_u64(line, "\"lane\"")?,
            },
            _ => return None,
        })
    }
}

fn parse_tier(name: &str) -> Option<EngineTier> {
    Some(match name {
        "reference" => EngineTier::Reference,
        "compiled" => EngineTier::Compiled,
        "jump" => EngineTier::Jump,
        "batch" => EngineTier::Batch,
        _ => return None,
    })
}

fn parse_law(name: &str) -> Option<LawMode> {
    Some(match name {
        "sequence" => LawMode::SequenceExpansion,
        "contingency" => LawMode::Contingency,
        "multiround" => LawMode::MultiRound,
        _ => return None,
    })
}

/// Wall-clock and interaction accounting for one execution tier.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierSpan {
    /// Interactions executed (or telescoped) under this tier.
    pub interactions: u64,
    /// Wall-clock seconds spent dispatching to this tier (monotonic clock,
    /// measured around episode/chunk dispatches only while an observer is
    /// attached; **never serialized** — snapshots stay byte-deterministic).
    pub seconds: f64,
    /// Dispatches (episodes or per-step chunks) into this tier.
    pub dispatches: u64,
}

/// Per-tier interaction and wall-time accounting, maintained by the engine
/// while an observer is attached. Persistent interaction counters that
/// survive snapshot/resume live in [`TierUsage`] instead (wall time cannot
/// survive a resume and is never serialized).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierTimeline {
    /// The uncached per-step tier.
    pub reference: TierSpan,
    /// The compiled per-step tier.
    pub compiled: TierSpan,
    /// The null-telescoping jump tier.
    pub jump: TierSpan,
    /// The hypergeometric batch tier.
    pub batch: TierSpan,
}

impl TierTimeline {
    /// Accounts one dispatch of `interactions` interactions taking
    /// `seconds` wall seconds to `tier`.
    pub(crate) fn note(&mut self, tier: EngineTier, interactions: u64, seconds: f64) {
        let span = match tier {
            EngineTier::Reference => &mut self.reference,
            EngineTier::Compiled => &mut self.compiled,
            EngineTier::Jump => &mut self.jump,
            EngineTier::Batch => &mut self.batch,
        };
        span.interactions += interactions;
        span.seconds += seconds;
        span.dispatches += 1;
    }

    /// Total wall seconds across all tiers.
    pub fn total_seconds(&self) -> f64 {
        self.reference.seconds + self.compiled.seconds + self.jump.seconds + self.batch.seconds
    }

    /// The per-tier spans as `(tier, span)` rows in dispatch-priority order.
    pub fn spans(&self) -> [(EngineTier, TierSpan); 4] {
        [
            (EngineTier::Jump, self.jump),
            (EngineTier::Batch, self.batch),
            (EngineTier::Compiled, self.compiled),
            (EngineTier::Reference, self.reference),
        ]
    }
}

/// Samples observables (leader count, live support) every `every`
/// interactions into a [`Trace`], for CSV export keyed by parallel time
/// (interactions / n — the trace's own step column carries the raw
/// interaction count).
///
/// Samples are taken at dispatch boundaries: on per-step tiers the engine
/// subdivides its chunk windows so samples land exactly on the `every`
/// grid; on the jump/batch tiers episode budgets are *not* capped (capping
/// would change the RNG stream and break bit-identity), so a sample lands
/// on the first episode boundary at or past each grid point, with the exact
/// step count recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectorySampler {
    every: u64,
    next_at: u64,
    trace: Trace,
}

/// Column names of the trajectory trace.
pub const TRAJECTORY_SERIES: [&str; 2] = ["leaders", "support"];

impl TrajectorySampler {
    /// A sampler on an `every`-interaction grid (floored at 1).
    pub fn new(every: u64) -> Self {
        Self {
            every: every.max(1),
            next_at: 0,
            trace: Trace::new(TRAJECTORY_SERIES),
        }
    }

    /// The sampling grid interval.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// The next grid step at or past which a sample is due.
    pub(crate) fn next_due(&self) -> u64 {
        self.next_at
    }

    /// Records a sample at `step` and advances the grid strictly past it.
    pub(crate) fn sample(&mut self, step: u64, leaders: u64, support: u64) {
        self.trace.record(step, &[leaders as f64, support as f64]);
        self.next_at = (step / self.every + 1).saturating_mul(self.every);
    }

    /// The sampled trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the sampler, returning its trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

/// The attachable observation hook (see the [module docs](self)): buffers
/// [`EngineEvent`]s up to a capacity, accounts a [`TierTimeline`], and
/// optionally drives a [`TrajectorySampler`].
///
/// Attach with [`CountSimulation::set_observer`]
/// (crate::CountSimulation::set_observer) (or the wide-engine equivalent),
/// read through [`CountSimulation::observer`]
/// (crate::CountSimulation::observer), detach with
/// [`CountSimulation::take_observer`]
/// (crate::CountSimulation::take_observer).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineObserver {
    events: Vec<EngineEvent>,
    capacity: usize,
    dropped: u64,
    timeline: TierTimeline,
    sampler: Option<TrajectorySampler>,
}

impl Default for EngineObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineObserver {
    /// An observer with the [default event capacity]
    /// (DEFAULT_EVENT_CAPACITY) and no trajectory sampler.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An observer buffering at most `capacity` events (further events are
    /// counted in [`dropped`](Self::dropped), not stored).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
            timeline: TierTimeline::default(),
            sampler: None,
        }
    }

    /// Adds a trajectory sampler on an `every`-interaction grid (builder
    /// style).
    #[must_use]
    pub fn with_trajectory(mut self, every: u64) -> Self {
        self.sampler = Some(TrajectorySampler::new(every));
        self
    }

    /// Sinks one event, dropping (and counting) past capacity.
    pub fn record(&mut self, event: EngineEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The buffered events, in emission order.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Events dropped past the buffer capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The per-tier interaction / wall-time accounting.
    pub fn timeline(&self) -> &TierTimeline {
        &self.timeline
    }

    pub(crate) fn timeline_mut(&mut self) -> &mut TierTimeline {
        &mut self.timeline
    }

    /// The trajectory sampler, if one was requested.
    pub fn sampler(&self) -> Option<&TrajectorySampler> {
        self.sampler.as_ref()
    }

    pub(crate) fn sampler_mut(&mut self) -> Option<&mut TrajectorySampler> {
        self.sampler.as_mut()
    }

    /// The sampled trajectory trace, if a sampler was requested.
    pub fn trajectory(&self) -> Option<&Trace> {
        self.sampler.as_ref().map(TrajectorySampler::trace)
    }

    /// Consumes the observer, returning the sampled trajectory trace (if a
    /// sampler was requested) without cloning it.
    pub fn into_trace(self) -> Option<Trace> {
        self.sampler.map(TrajectorySampler::into_trace)
    }

    /// Serializes the buffered events as JSONL (one event per line,
    /// trailing newline after each).
    pub fn events_to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// One unified metrics snapshot of a count or wide simulation: population,
/// progress, tier usage, and the per-tier stats the engine previously
/// reported only through `jump_stats()` / `batch_stats()`. Obtained from
/// [`CountSimulation::metrics`](crate::CountSimulation::metrics) or
/// [`WideSimulation::metrics`](crate::WideSimulation::metrics); always
/// available — the observer-only extras (event counts, timeline) are
/// populated when an observer is attached.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// Population size `n`.
    pub population: u64,
    /// Interactions simulated so far.
    pub steps: u64,
    /// `steps / n`.
    pub parallel_time: f64,
    /// Live support (states with nonzero count; wide: maximum over lanes).
    pub support: u64,
    /// Distinct states interned over the whole execution.
    pub distinct_states_seen: u64,
    /// The tier the engine is currently dispatching to.
    pub active_tier: EngineTier,
    /// The batch tier's configured round law.
    pub law: LawMode,
    /// Interactions executed per tier (persistent: serialized in snapshots
    /// and restored on resume).
    pub tier_usage: TierUsage,
    /// Jump-scheduler counters.
    pub jump: JumpStats,
    /// Batch-tier round counters.
    pub batch: BatchStats,
    /// Whether the compiled pair cache is active.
    pub cache_active: bool,
    /// Ordered state pairs currently compiled in the pair cache.
    pub compiled_pairs: u64,
    /// Events buffered by the attached observer (0 when detached).
    pub events_recorded: u64,
    /// Events dropped past the observer's capacity (0 when detached).
    pub events_dropped: u64,
    /// Per-tier wall-time accounting; `None` when no observer is attached
    /// (wall time is only measured under observation).
    pub timeline: Option<TierTimeline>,
}

/// Schema tag embedded in (and required from) the metrics JSON.
pub const METRICS_SCHEMA: &str = "pp-engine-metrics/v1";

impl EngineMetrics {
    /// Serializes the metrics as one JSON object (pretty-stable field
    /// order; hand-rolled — the workspace takes no serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"schema\":\"{METRICS_SCHEMA}\",\"population\":{},\"steps\":{},\
             \"parallel_time\":{},\"support\":{},\"distinct_states_seen\":{},\
             \"active_tier\":\"{}\",\"law\":\"{}\",",
            self.population,
            self.steps,
            self.parallel_time,
            self.support,
            self.distinct_states_seen,
            self.active_tier,
            self.law,
        ));
        out.push_str(&format!(
            "\"tier_usage\":{{\"reference\":{},\"compiled\":{},\"jump\":{},\"batch\":{}}},",
            self.tier_usage.reference,
            self.tier_usage.compiled,
            self.tier_usage.jump,
            self.tier_usage.batch,
        ));
        out.push_str(&format!(
            "\"jump\":{{\"episodes\":{},\"skipped\":{}}},",
            self.jump.episodes, self.jump.skipped,
        ));
        out.push_str(&format!(
            "\"batch\":{{\"episodes\":{},\"bulk_interactions\":{},\"collision_interactions\":{},\
             \"exact_walks\":{},\"contingency_draws\":{},\"shuffle_skips\":{},\
             \"episode_segments\":{}}},",
            self.batch.episodes,
            self.batch.bulk_interactions,
            self.batch.collision_interactions,
            self.batch.exact_walks,
            self.batch.contingency_draws,
            self.batch.shuffle_skips,
            self.batch.episode_segments,
        ));
        out.push_str(&format!(
            "\"cache\":{{\"active\":{},\"compiled_pairs\":{}}},",
            self.cache_active, self.compiled_pairs,
        ));
        out.push_str(&format!(
            "\"events\":{{\"recorded\":{},\"dropped\":{}}},",
            self.events_recorded, self.events_dropped,
        ));
        match &self.timeline {
            None => out.push_str("\"timeline\":null}"),
            Some(t) => {
                out.push_str("\"timeline\":{");
                for (i, (tier, span)) in [
                    ("reference", t.reference),
                    ("compiled", t.compiled),
                    ("jump", t.jump),
                    ("batch", t.batch),
                ]
                .iter()
                .enumerate()
                {
                    out.push_str(&format!(
                        "\"{tier}\":{{\"interactions\":{},\"seconds\":{},\"dispatches\":{}}}{}",
                        span.interactions,
                        span.seconds,
                        span.dispatches,
                        if i < 3 { "," } else { "" }
                    ));
                }
                out.push_str("}}");
            }
        }
        out
    }

    /// Parses a JSON object produced by [`to_json`](Self::to_json); `None`
    /// on any malformation, including a missing or wrong schema tag.
    /// Round-trips exactly (floats are printed in shortest-round-trip
    /// form).
    pub fn from_json(text: &str) -> Option<Self> {
        if scan_str(text, "\"schema\"")? != METRICS_SCHEMA {
            return None;
        }
        let usage = object_slice(text, "\"tier_usage\"")?;
        let jump = object_slice(text, "\"jump\"")?;
        let batch = object_slice(text, "\"batch\"")?;
        let cache = object_slice(text, "\"cache\"")?;
        let events = object_slice(text, "\"events\"")?;
        let timeline = match object_slice(text, "\"timeline\"") {
            Some(t) => {
                let span = |key: &str| -> Option<TierSpan> {
                    let obj = object_slice(t, key)?;
                    Some(TierSpan {
                        interactions: scan_u64(obj, "\"interactions\"")?,
                        seconds: scan_f64(obj, "\"seconds\"")?,
                        dispatches: scan_u64(obj, "\"dispatches\"")?,
                    })
                };
                Some(TierTimeline {
                    reference: span("\"reference\"")?,
                    compiled: span("\"compiled\"")?,
                    jump: span("\"jump\"")?,
                    batch: span("\"batch\"")?,
                })
            }
            None => None,
        };
        Some(Self {
            population: scan_u64(text, "\"population\"")?,
            steps: scan_u64(text, "\"steps\"")?,
            parallel_time: scan_f64(text, "\"parallel_time\"")?,
            support: scan_u64(text, "\"support\"")?,
            distinct_states_seen: scan_u64(text, "\"distinct_states_seen\"")?,
            active_tier: parse_tier(&scan_str(text, "\"active_tier\"")?)?,
            law: parse_law(&scan_str(text, "\"law\"")?)?,
            tier_usage: TierUsage {
                reference: scan_u64(usage, "\"reference\"")?,
                compiled: scan_u64(usage, "\"compiled\"")?,
                jump: scan_u64(usage, "\"jump\"")?,
                batch: scan_u64(usage, "\"batch\"")?,
            },
            jump: JumpStats {
                episodes: scan_u64(jump, "\"episodes\"")?,
                skipped: scan_u64(jump, "\"skipped\"")?,
            },
            batch: BatchStats {
                episodes: scan_u64(batch, "\"episodes\"")?,
                bulk_interactions: scan_u64(batch, "\"bulk_interactions\"")?,
                collision_interactions: scan_u64(batch, "\"collision_interactions\"")?,
                exact_walks: scan_u64(batch, "\"exact_walks\"")?,
                contingency_draws: scan_u64(batch, "\"contingency_draws\"")?,
                shuffle_skips: scan_u64(batch, "\"shuffle_skips\"")?,
                episode_segments: scan_u64(batch, "\"episode_segments\"")?,
            },
            cache_active: scan_bool(cache, "\"active\"")?,
            compiled_pairs: scan_u64(cache, "\"compiled_pairs\"")?,
            events_recorded: scan_u64(events, "\"recorded\"")?,
            events_dropped: scan_u64(events, "\"dropped\"")?,
            timeline,
        })
    }
}

/// Value of `"key": "string"` after the quoted `key` in `text`.
fn scan_str(text: &str, key: &str) -> Option<String> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Value of `"key": <number>` after the quoted `key` in `text`.
fn scan_f64(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_u64(text: &str, key: &str) -> Option<u64> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Value of `"key": true|false` after the quoted `key` in `text`.
fn scan_bool(text: &str, key: &str) -> Option<bool> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// The balanced `{...}` object following `"key":` in `text`; `None` for a
/// missing key or a `null` value. Occurrences of `key` that are not
/// followed by `:` and an object (e.g. the same word as a nested key with a
/// scalar value, or as a string *value*) are skipped, so `"jump"` resolves
/// to the jump-stats object even though `tier_usage` also has a `jump`
/// field. The format this parses is the crate's own output (no braces
/// inside strings), so brace counting is exact.
fn object_slice<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    for (at, _) in text.match_indices(key) {
        let rest = text[at + key.len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            continue;
        };
        let rest = rest.trim_start();
        if rest.starts_with("null") {
            return None;
        }
        if !rest.starts_with('{') {
            continue;
        }
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&rest[..=i]);
                    }
                }
                _ => {}
            }
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<EngineEvent> {
        vec![
            EngineEvent::TierTransition {
                step: 0,
                from: EngineTier::Compiled,
                to: EngineTier::Batch,
            },
            EngineEvent::JumpEngage {
                step: 10,
                w_active: 3,
                w_total: 90,
            },
            EngineEvent::JumpDisengage {
                step: 25,
                w_active: 80,
                w_total: 90,
                episodes: 4,
                skipped: 11,
            },
            EngineEvent::BatchEngage {
                step: 30,
                support: 12,
                expected_run: 640,
            },
            EngineEvent::BatchExit {
                step: 31,
                support: 2000,
                expected_run: 640,
            },
            EngineEvent::BatchEpisode {
                step: 700,
                law: LawMode::Contingency,
                segments: 2,
                bulk: 633,
                collision: true,
                walked: false,
            },
            EngineEvent::Compaction {
                step: 4096,
                live_before: 900,
                live_after: 130,
            },
            EngineEvent::SnapshotTaken {
                step: 5000,
                bytes: 2048,
            },
            EngineEvent::Resumed { step: 5000 },
            EngineEvent::LaneRetired { step: 777, lane: 3 },
            EngineEvent::LaneSpilled { step: 778, lane: 0 },
        ]
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        for event in sample_events() {
            let line = event.to_json_line();
            assert_eq!(
                EngineEvent::parse_json_line(&line),
                Some(event),
                "line: {line}"
            );
            assert_eq!(
                event.step(),
                EngineEvent::parse_json_line(&line).unwrap().step()
            );
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for line in [
            "",
            "{}",
            "{\"event\":\"unknown\",\"step\":3}",
            "{\"event\":\"jump_engage\",\"step\":3}", // missing fields
            "{\"event\":\"tier_transition\",\"step\":1,\"from\":\"warp\",\"to\":\"batch\"}",
        ] {
            assert_eq!(EngineEvent::parse_json_line(line), None, "accepted {line}");
        }
    }

    #[test]
    fn observer_caps_and_counts_dropped_events() {
        let mut obs = EngineObserver::with_capacity(2);
        for event in sample_events() {
            obs.record(event);
        }
        assert_eq!(obs.events().len(), 2);
        assert_eq!(obs.dropped(), sample_events().len() as u64 - 2);
        let jsonl = obs.events_to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(EngineEvent::parse_json_line(line).is_some());
        }
    }

    #[test]
    fn trajectory_sampler_advances_its_grid() {
        let mut s = TrajectorySampler::new(100);
        assert_eq!(s.next_due(), 0);
        s.sample(0, 16, 2);
        assert_eq!(s.next_due(), 100);
        // A sample landing past several grid points advances past the last.
        s.sample(342, 9, 3);
        assert_eq!(s.next_due(), 400);
        assert_eq!(s.trace().len(), 2);
        assert_eq!(s.trace().names(), ["leaders", "support"]);
        assert_eq!(TrajectorySampler::new(0).every(), 1, "grid floors at 1");
    }

    fn sample_metrics(timeline: Option<TierTimeline>) -> EngineMetrics {
        EngineMetrics {
            population: 1 << 20,
            steps: 123_456,
            parallel_time: 123_456.0 / (1u64 << 20) as f64,
            support: 130,
            distinct_states_seen: 280,
            active_tier: EngineTier::Batch,
            law: LawMode::MultiRound,
            tier_usage: TierUsage {
                reference: 1,
                compiled: 2,
                jump: 3,
                batch: 4,
            },
            jump: JumpStats {
                episodes: 7,
                skipped: 99,
            },
            batch: BatchStats {
                episodes: 5,
                bulk_interactions: 3000,
                collision_interactions: 4,
                exact_walks: 1,
                contingency_draws: 17,
                shuffle_skips: 2,
                episode_segments: 9,
            },
            cache_active: true,
            compiled_pairs: 412,
            events_recorded: 31,
            events_dropped: 0,
            timeline,
        }
    }

    #[test]
    fn metrics_round_trip_without_timeline() {
        let m = sample_metrics(None);
        let json = m.to_json();
        assert!(json.contains("\"timeline\":null"));
        assert_eq!(EngineMetrics::from_json(&json), Some(m));
    }

    #[test]
    fn metrics_round_trip_with_timeline() {
        let mut t = TierTimeline::default();
        t.note(EngineTier::Batch, 5000, 0.125);
        t.note(EngineTier::Compiled, 10, 0.5e-6);
        t.note(EngineTier::Jump, 77, 0.25);
        let m = sample_metrics(Some(t));
        let json = m.to_json();
        assert_eq!(EngineMetrics::from_json(&json), Some(m.clone()));
        assert!((m.timeline.unwrap().total_seconds() - 0.3750005).abs() < 1e-12);
    }

    #[test]
    fn metrics_parser_rejects_wrong_schema() {
        let m = sample_metrics(None);
        let json = m.to_json().replace(METRICS_SCHEMA, "pp-engine-metrics/v0");
        assert_eq!(EngineMetrics::from_json(&json), None);
        assert_eq!(EngineMetrics::from_json("{}"), None);
    }

    #[test]
    fn timeline_spans_cover_all_tiers() {
        let mut t = TierTimeline::default();
        for (tier, _) in t.spans() {
            t.note(tier, 1, 0.0);
        }
        assert!(t.spans().iter().all(|(_, span)| span.dispatches == 1));
        assert_eq!(t.reference.interactions, 1);
    }
}
