//! Time-series recording for simulation observables.

/// A multi-series trace of simulation observables over execution steps.
///
/// Pairs naturally with [`Simulation::run_sampled`](crate::Simulation::run_sampled):
/// sample the observables you care about every `k` steps and render the
/// result as CSV for plotting.
///
/// # Example
///
/// ```
/// use pp_engine::Trace;
///
/// let mut trace = Trace::new(["leaders", "infected"]);
/// trace.record(0, &[10.0, 1.0]);
/// trace.record(100, &[3.0, 7.0]);
/// assert_eq!(trace.len(), 2);
/// assert!(trace.to_csv().starts_with("step,leaders,infected\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    names: Vec<String>,
    rows: Vec<(u64, Vec<f64>)>,
}

impl Trace {
    /// Creates a trace with the given series names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "a trace needs at least one series");
        Self {
            names,
            rows: Vec::new(),
        }
    }

    /// Appends one sample row at execution step `step`.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the number of series, or if `step`
    /// is not monotonically non-decreasing.
    pub fn record(&mut self, step: u64, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.names.len(),
            "expected {} values, got {}",
            self.names.len(),
            values.len()
        );
        if let Some(&(last, _)) = self.rows.last() {
            assert!(
                step >= last,
                "steps must be non-decreasing: step {step} after step {last}"
            );
        }
        if self.rows.capacity() == self.rows.len() {
            // Sampled runs record thousands of rows; grow in visible chunks
            // instead of relying on push's doubling from a cold vector.
            self.rows.reserve(64.max(self.rows.len()));
        }
        self.rows.push((step, values.to_vec()));
    }

    /// Appends every row of `other` to `self`, consuming it — the natural way
    /// to stitch the trace segments of a suspended-and-resumed run back into
    /// one series.
    ///
    /// # Panics
    ///
    /// Panics if the series names differ, or if `other` starts at a step
    /// before the last step recorded in `self`.
    pub fn merge(&mut self, other: Trace) {
        assert_eq!(
            self.names, other.names,
            "cannot merge traces with different series"
        );
        if let (Some(&(last, _)), Some(&(first, _))) = (self.rows.last(), other.rows.first()) {
            assert!(
                first >= last,
                "steps must be non-decreasing: merged trace starts at step {first}, \
                 before step {last}"
            );
        }
        self.rows.reserve(other.rows.len());
        self.rows.extend(other.rows);
    }

    /// The step of the most recently recorded row, if any.
    pub fn last_step(&self) -> Option<u64> {
        self.rows.last().map(|&(step, _)| step)
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The series names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[(u64, Vec<f64>)] {
        &self.rows
    }

    /// The last recorded value of a series, by name.
    pub fn last_value(&self, series: &str) -> Option<f64> {
        let idx = self.names.iter().position(|n| n == series)?;
        self.rows.last().map(|(_, values)| values[idx])
    }

    /// Keeps every `k`-th row (plus the final row), reducing resolution for
    /// plotting long runs.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn downsample(&self, k: usize) -> Trace {
        assert!(k > 0, "downsample factor must be positive");
        let mut out = Trace::new(self.names.clone());
        for (i, (step, values)) in self.rows.iter().enumerate() {
            if i % k == 0 || i + 1 == self.rows.len() {
                out.record(*step, values);
            }
        }
        out
    }

    /// Renders the trace as CSV with a `step` column first.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,");
        out.push_str(&self.names.join(","));
        out.push('\n');
        for (step, values) in &self.rows {
            out.push_str(&step.to_string());
            for v in values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_series_rejected() {
        Trace::new(Vec::<String>::new());
    }

    #[test]
    fn record_and_query() {
        let mut t = Trace::new(["a", "b"]);
        t.record(0, &[1.0, 2.0]);
        t.record(10, &[3.0, 4.0]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.last_value("a"), Some(3.0));
        assert_eq!(t.last_value("b"), Some(4.0));
        assert_eq!(t.last_value("c"), None);
    }

    #[test]
    #[should_panic(expected = "expected 2 values")]
    fn row_width_checked() {
        let mut t = Trace::new(["a", "b"]);
        t.record(0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn steps_must_not_go_backwards() {
        let mut t = Trace::new(["a"]);
        t.record(10, &[1.0]);
        t.record(5, &[2.0]);
    }

    #[test]
    fn panic_message_names_both_steps() {
        let mut t = Trace::new(["a"]);
        t.record(10, &[1.0]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.record(5, &[2.0]);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("step 5") && msg.contains("step 10"), "{msg}");
    }

    #[test]
    fn merge_concatenates_resumed_segments() {
        let mut a = Trace::new(["v"]);
        a.record(0, &[3.0]);
        a.record(10, &[2.0]);
        let mut b = Trace::new(["v"]);
        b.record(10, &[2.0]);
        b.record(25, &[1.0]);
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.last_step(), Some(25));
        assert_eq!(a.last_value("v"), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "different series")]
    fn merge_rejects_mismatched_series() {
        let mut a = Trace::new(["v"]);
        a.merge(Trace::new(["w"]));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn merge_rejects_backward_steps() {
        let mut a = Trace::new(["v"]);
        a.record(10, &[1.0]);
        let mut b = Trace::new(["v"]);
        b.record(5, &[2.0]);
        a.merge(b);
    }

    #[test]
    fn csv_shape() {
        let mut t = Trace::new(["x"]);
        t.record(1, &[0.5]);
        let csv = t.to_csv();
        assert_eq!(csv, "step,x\n1,0.5\n");
    }

    #[test]
    fn downsampling_keeps_first_and_last() {
        let mut t = Trace::new(["v"]);
        for i in 0..10 {
            t.record(i, &[i as f64]);
        }
        let d = t.downsample(4);
        let steps: Vec<u64> = d.rows().iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![0, 4, 8, 9]);
    }

    #[test]
    fn integrates_with_run_sampled() {
        use crate::{Protocol, Role, Simulation, UniformScheduler};

        #[derive(Debug, Clone, Copy)]
        struct Frat;
        impl Protocol for Frat {
            type State = bool;
            type Output = Role;
            fn initial_state(&self) -> bool {
                true
            }
            fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
                if *a && *b {
                    (true, false)
                } else {
                    (*a, *b)
                }
            }
            fn output(&self, s: &bool) -> Role {
                if *s {
                    Role::Leader
                } else {
                    Role::Follower
                }
            }
        }

        let mut sim = Simulation::new(Frat, 20, UniformScheduler::seed_from_u64(1)).unwrap();
        let mut trace = Trace::new(["leaders"]);
        sim.run_sampled(2000, 100, |step, states| {
            let leaders = states.iter().filter(|&&l| l).count();
            trace.record(step, &[leaders as f64]);
        });
        assert_eq!(trace.len(), 20);
        // Leader counts are non-increasing in the trace.
        let vals: Vec<f64> = trace.rows().iter().map(|(_, v)| v[0]).collect();
        assert!(vals.windows(2).all(|w| w[1] <= w[0]));
    }
}
