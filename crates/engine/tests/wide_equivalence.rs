//! The wide lane engine's pinned policies must be **bit-identical**, lane
//! by lane, to the scalar count engine: each lane consumes its own RNG
//! stream in exactly the scalar draw order, so under
//! [`WideTierPolicy::PinnedPerStep`] every lane must match a scalar run
//! with the jump and batch tiers (and compaction) disabled, and under
//! [`WideTierPolicy::PinnedBatch`] a scalar run under `force_batch_mode`.
//!
//! The suite pins that equivalence on fratricide and — via proptest — on
//! randomly generated small protocols, through both fixed-budget runs
//! (comparing exact per-lane configurations) and elections (comparing
//! outcomes). Early retirement and the lane-dimension SoA compaction are
//! exercised by staggered convergence and staggered budgets (mixed
//! converged/budget-out retirement down to a single survivor), plus the
//! W = 1 and all-converge-at-the-same-step edges. The auto policy's
//! heuristic dispatch is covered in law by `tests/wide_law.rs`; here it
//! gets determinism, spill-completion, and compaction-invariant coverage.

use pp_engine::wide::{WideSimulation, WideTierPolicy};
use pp_engine::{CountSimulation, EngineConfig, LeaderElection, Protocol, Role, RunOutcome};
use pp_rand::{SeedSequence, Xoshiro256PlusPlus};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Frat;

impl Protocol for Frat {
    type State = bool;
    type Output = Role;
    fn initial_state(&self) -> bool {
        true
    }
    fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
        if *a && *b {
            (true, false)
        } else {
            (*a, *b)
        }
    }
    fn output(&self, s: &bool) -> Role {
        if *s {
            Role::Leader
        } else {
            Role::Follower
        }
    }
}

impl LeaderElection for Frat {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

/// A protocol given by an explicit transition table over states `0..k`.
#[derive(Debug, Clone)]
struct TableProtocol {
    k: u8,
    /// `table[(a * k + b)] = (a', b')`.
    table: Vec<(u8, u8)>,
}

impl Protocol for TableProtocol {
    type State = u8;
    type Output = Role;

    fn initial_state(&self) -> u8 {
        0
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        self.table[(*a as usize) * self.k as usize + (*b as usize)]
    }

    fn output(&self, s: &u8) -> Role {
        if *s == 0 {
            Role::Leader
        } else {
            Role::Follower
        }
    }
}

impl LeaderElection for TableProtocol {}

/// Compaction renumbers scalar slots by count order while the pinned wide
/// policies never compact, so the bit-identity comparison pins it off on
/// the scalar twin (and, for symmetry, the wide side).
fn pinned_config() -> EngineConfig {
    EngineConfig {
        compaction: false,
        ..EngineConfig::default()
    }
}

/// The scalar configuration a pinned wide policy is bit-identical to.
fn scalar_twin<P: LeaderElection>(
    protocol: P,
    n: usize,
    rng: Xoshiro256PlusPlus,
    policy: WideTierPolicy,
) -> CountSimulation<P, Xoshiro256PlusPlus> {
    let mut sim = CountSimulation::with_config(protocol, n, rng, pinned_config()).expect("n >= 2");
    match policy {
        WideTierPolicy::PinnedPerStep => {
            sim.set_jump_scheduler(false);
            sim.set_batch_tier(false);
        }
        WideTierPolicy::PinnedBatch => sim.force_batch_mode(),
        WideTierPolicy::Auto | WideTierPolicy::LawOnly => {
            unreachable!("only pinned policies have a scalar twin")
        }
    }
    sim
}

fn pinned_wide<P: LeaderElection + Clone>(
    protocol: &P,
    n: usize,
    seq: &SeedSequence,
    width: usize,
    policy: WideTierPolicy,
) -> WideSimulation<P, Xoshiro256PlusPlus> {
    WideSimulation::with_config(
        protocol.clone(),
        n,
        seq.rngs(width),
        pinned_config(),
        policy,
    )
    .expect("n >= 2")
}

#[test]
fn pinned_elections_match_scalar_lane_by_lane() {
    for (policy, n, salt) in [
        (WideTierPolicy::PinnedPerStep, 192usize, 1u64),
        (WideTierPolicy::PinnedBatch, 256, 2),
    ] {
        let width = 8;
        let seq = SeedSequence::new(salt);
        let mut wide = pinned_wide(&Frat, n, &seq, width, policy);
        let election = wide.run_until_single_leader(u64::MAX);
        assert!(election.spilled.is_empty(), "pinned policies never spill");
        for lane in 0..width {
            let mut scalar = scalar_twin(Frat, n, seq.rng_at(lane as u64), policy);
            let out = scalar.run_until_single_leader(u64::MAX);
            assert!(out.converged);
            assert_eq!(
                election.outcomes[lane],
                Some(out),
                "{policy:?} lane {lane} diverged from its scalar twin"
            );
        }
    }
}

#[test]
fn pinned_fixed_budget_runs_match_scalar_configurations() {
    for policy in [WideTierPolicy::PinnedPerStep, WideTierPolicy::PinnedBatch] {
        let (n, width, budget) = (160, 4, 5000u64);
        let seq = SeedSequence::new(7);
        let mut wide = pinned_wide(&Frat, n, &seq, width, policy);
        wide.run(budget);
        for lane in 0..width {
            let mut scalar = scalar_twin(Frat, n, seq.rng_at(lane as u64), policy);
            scalar.run(budget);
            assert_eq!(wide.lane_steps(lane), scalar.steps(), "{policy:?}");
            assert_eq!(
                wide.lane_state_counts(lane),
                scalar.state_counts(),
                "{policy:?} lane {lane} configuration diverged"
            );
        }
    }
}

#[test]
fn single_lane_equals_scalar() {
    for policy in [WideTierPolicy::PinnedPerStep, WideTierPolicy::PinnedBatch] {
        let seq = SeedSequence::new(9);
        let mut wide = pinned_wide(&Frat, 128, &seq, 1, policy);
        let election = wide.run_until_single_leader(u64::MAX);
        let mut scalar = scalar_twin(Frat, 128, seq.rng_at(0), policy);
        let out = scalar.run_until_single_leader(u64::MAX);
        assert_eq!(election.outcomes, vec![Some(out)], "{policy:?}");
    }
}

#[test]
fn all_lanes_converge_at_the_same_step() {
    // n = 2 fratricide: the very first interaction is L,L → L,F in every
    // lane, so the whole lane set retires in one retirement pass.
    let seq = SeedSequence::new(3);
    let mut wide = WideSimulation::new(Frat, 2, seq.rngs(6)).expect("n >= 2");
    wide.set_spill(false);
    let election = wide.run_until_single_leader(u64::MAX);
    assert!(election.spilled.is_empty());
    for outcome in election.outcomes {
        assert_eq!(
            outcome,
            Some(RunOutcome {
                steps: 1,
                converged: true
            })
        );
    }
    assert_eq!(wide.lanes(), 0);
}

#[test]
fn staggered_budgets_retire_lanes_exactly_like_scalar() {
    // A budget between the lanes' scalar convergence times mixes converged
    // and budget-out retirement and compacts the lane dimension down to a
    // single survivor; every outcome must still match the scalar twin.
    let (n, width) = (128, 6);
    let seq = SeedSequence::new(11);
    let scalar_steps: Vec<u64> = (0..width)
        .map(|lane| {
            let mut scalar = scalar_twin(
                Frat,
                n,
                seq.rng_at(lane as u64),
                WideTierPolicy::PinnedPerStep,
            );
            scalar.run_until_single_leader(u64::MAX).steps
        })
        .collect();
    let mut sorted = scalar_steps.clone();
    sorted.sort_unstable();
    let budget = sorted[width - 2];
    let mut wide = pinned_wide(&Frat, n, &seq, width, WideTierPolicy::PinnedPerStep);
    let election = wide.run_until_single_leader(budget);
    for lane in 0..width {
        let mut scalar = scalar_twin(
            Frat,
            n,
            seq.rng_at(lane as u64),
            WideTierPolicy::PinnedPerStep,
        );
        let out = scalar.run_until_single_leader(budget);
        assert_eq!(election.outcomes[lane], Some(out), "lane {lane}");
    }
    let unconverged = election
        .outcomes
        .iter()
        .filter(|o| !o.expect("all lanes retired").converged)
        .count();
    assert!(unconverged >= 1, "budget retired no lane early");
    assert!(unconverged < width, "budget retired every lane");
}

#[test]
fn wide_runs_are_deterministic() {
    // Same seeds, same policy → identical outcomes and identical spill
    // exports, including under the heuristic auto policy.
    let run = || {
        let seq = SeedSequence::new(17);
        let mut wide = WideSimulation::new(Frat, 1024, seq.rngs(4)).expect("n >= 2");
        let election = wide.run_until_single_leader(u64::MAX);
        type SpillKey = (usize, u64, Vec<(bool, u64)>);
        let spills: Vec<SpillKey> = election
            .spilled
            .iter()
            .map(|e| (e.index, e.steps, e.counts.clone()))
            .collect();
        (election.outcomes, spills)
    };
    assert_eq!(run(), run());
}

#[test]
fn auto_spilled_lanes_complete_on_the_scalar_engine() {
    // Fratricide's election tail is null-dominated (only L,L pairs act), so
    // under the auto policy every lane eventually spills; the export must
    // hand back the exact configuration, step counter, and RNG so the
    // scalar engine (whose jump scheduler telescopes the tail) finishes it.
    let (n, width) = (2048usize, 4);
    let seq = SeedSequence::new(21);
    let mut wide = WideSimulation::new(Frat, n, seq.rngs(width)).expect("n >= 2");
    let election = wide.run_until_single_leader(u64::MAX);
    assert!(
        !election.spilled.is_empty(),
        "fratricide lanes never became null-dominated"
    );
    let mut finished = vec![false; width];
    for (lane, outcome) in election.outcomes.iter().enumerate() {
        if let Some(outcome) = outcome {
            assert!(outcome.converged);
            finished[lane] = true;
        }
    }
    for export in election.spilled {
        let total: u64 = export.counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, n as u64, "spill lost agents");
        let mut scalar =
            CountSimulation::from_counts(Frat, export.counts, export.rng).expect("n >= 2");
        let out = scalar.run_until_single_leader(u64::MAX);
        assert!(out.converged);
        assert_eq!(scalar.leader_count(), 1);
        assert!(!finished[export.index], "lane finished twice");
        finished[export.index] = true;
    }
    assert!(finished.iter().all(|&f| f), "a lane was lost");
}

#[test]
fn auto_engages_batch_rounds_above_the_population_floor() {
    // n ≥ batch_min_population with a 2-state support: the first review
    // must switch the lane set into batch rounds; fratricide lanes then
    // spill out of the null-dominated tail and finish on the scalar engine.
    let (n, width) = (8192usize, 4);
    let seq = SeedSequence::new(33);
    let mut wide = WideSimulation::new(Frat, n, seq.rngs(width)).expect("n >= 2");
    let election = wide.run_until_single_leader(u64::MAX);
    assert!(wide.batch_stats().episodes > 0, "batch tier never engaged");
    let mut finished = 0;
    for outcome in election.outcomes.iter().flatten() {
        assert!(outcome.converged);
        finished += 1;
    }
    for export in election.spilled {
        let mut scalar =
            CountSimulation::from_counts(Frat, export.counts, export.rng).expect("n >= 2");
        assert!(scalar.run_until_single_leader(u64::MAX).converged);
        finished += 1;
    }
    assert_eq!(finished, width);
}

/// A state-unbounded "generation" protocol: agents adopt the max value
/// they've seen, and two equal agents advance to the next generation. The
/// live support stays tiny while hundreds of dead generations accumulate —
/// the workload lane-slot and global-id compaction exist for.
#[derive(Debug, Clone, Copy)]
struct Generations;

impl Protocol for Generations {
    type State = u32;
    type Output = Role;
    fn initial_state(&self) -> u32 {
        0
    }
    fn transition(&self, a: &u32, b: &u32) -> (u32, u32) {
        if a == b {
            (a + 1, *b)
        } else {
            let m = *a.max(b);
            (m, m)
        }
    }
    fn output(&self, _s: &u32) -> Role {
        Role::Follower
    }
}

#[test]
fn lane_and_global_compaction_keep_lanes_exact() {
    // Auto policy with compaction live: each lane interns hundreds of
    // generation states while its support stays a handful, forcing lane
    // slot compaction and global id reclamation. The observable contract:
    // every lane's configuration still sums to n, every count is reachable,
    // and the live id space stays far below the states seen.
    let (n, width, budget) = (64usize, 3, 200_000u64);
    let seq = SeedSequence::new(41);
    let mut wide = WideSimulation::new(Generations, n, seq.rngs(width)).expect("n >= 2");
    wide.run(budget);
    assert!(
        wide.distinct_states_seen() > 128,
        "workload too small to exercise compaction: {} states",
        wide.distinct_states_seen()
    );
    assert!(
        wide.live_states() < wide.distinct_states_seen() / 2,
        "global id space was never compacted: {} live ids for {} states seen",
        wide.live_states(),
        wide.distinct_states_seen()
    );
    for lane in 0..width {
        assert_eq!(wide.lane_steps(lane), budget);
        let counts = wide.lane_state_counts(lane);
        let total: u64 = counts.values().sum();
        assert_eq!(total, n as u64, "lane {lane} lost agents");
    }
}

proptest! {
    #[test]
    fn random_protocols_match_scalar_lane_by_lane(
        k in 2u8..6,
        table_seed in 0u64..1_000_000,
        salt in 0u64..1_000_000,
        n in 8usize..64,
        width in 1usize..5,
        pinned_batch in any::<bool>(),
    ) {
        // Build a random transition table from the seed (deterministic).
        let mut t = Xoshiro256PlusPlus::seed_from_u64(table_seed);
        use pp_rand::Rng64;
        let table: Vec<(u8, u8)> = (0..(k as usize * k as usize))
            .map(|_| ((t.below(k as u64)) as u8, (t.below(k as u64)) as u8))
            .collect();
        let protocol = TableProtocol { k, table };
        let policy = if pinned_batch {
            WideTierPolicy::PinnedBatch
        } else {
            WideTierPolicy::PinnedPerStep
        };

        let seq = SeedSequence::new(salt);
        let mut wide = pinned_wide(&protocol, n, &seq, width, policy);
        wide.run(512);
        for lane in 0..width {
            prop_assert_eq!(wide.lane_steps(lane), 512);
        }
        let election = wide.run_until_single_leader(2048);
        prop_assert!(election.spilled.is_empty());
        for lane in 0..width {
            let mut scalar = scalar_twin(protocol.clone(), n, seq.rng_at(lane as u64), policy);
            scalar.run(512);
            let out = scalar.run_until_single_leader(2048);
            prop_assert_eq!(election.outcomes[lane], Some(out));
        }
    }
}
