//! The jump scheduler must execute the **same law** as the per-step engines:
//! identical stabilization-time distributions (pinned by chi-square
//! homogeneity against both the compiled count engine and the per-agent
//! reference engine) and — much stronger — **identical trajectories modulo
//! null-step compression** when driven by a crafted RNG stream.
//!
//! The replay suite works because one jump episode consumes exactly two RNG
//! words (one for the geometric null-run length when known-null pairs exist,
//! one for the active-pair draw), both of which can be *inverted*: given a
//! per-step trace of the compiled engine, we compute for each episode the
//! null-run length and the lexicographic rank of the executed pair in the
//! scheduler's active-candidate distribution, then synthesize the exact
//! words that make `Geometric::sample` and `Rng64::below` reproduce them.
//! Feeding that stream to a jump-forced twin must replay the compiled
//! engine's execution configuration-for-configuration and step-for-step —
//! for *arbitrary* random transition tables.

use pp_engine::{CountSimulation, LeaderElection, Protocol, Role, Simulation, UniformScheduler};
use pp_rand::{Geometric, Rng64, Xoshiro256PlusPlus};
use pp_stats::{chi_square_homogeneity, quantile_bins, wilson95};
use proptest::prelude::*;
use std::collections::HashSet;

/// A protocol given by an explicit transition table over states `0..k`.
#[derive(Debug, Clone)]
struct TableProtocol {
    k: u8,
    /// `table[a * k + b] = (a', b')`.
    table: Vec<(u8, u8)>,
}

impl Protocol for TableProtocol {
    type State = u8;
    type Output = Role;

    fn initial_state(&self) -> u8 {
        0
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        self.table[(*a as usize) * self.k as usize + (*b as usize)]
    }

    fn output(&self, s: &u8) -> Role {
        if *s == 0 {
            Role::Leader
        } else {
            Role::Follower
        }
    }
}

impl LeaderElection for TableProtocol {}

#[derive(Debug, Clone, Copy)]
struct Frat;

impl Protocol for Frat {
    type State = bool;
    type Output = Role;
    fn initial_state(&self) -> bool {
        true
    }
    fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
        if *a && *b {
            (true, false)
        } else {
            (*a, *b)
        }
    }
    fn output(&self, s: &bool) -> Role {
        if *s {
            Role::Leader
        } else {
            Role::Follower
        }
    }
}

impl LeaderElection for Frat {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

fn rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

// ---------------------------------------------------------------------------
// Law-level equivalence: chi-square over stabilization-time histograms.
// ---------------------------------------------------------------------------

/// Stabilization parallel times of fratricide at `n` over `seeds` runs on
/// the selected engine path.
fn stabilization_sample(n: usize, seeds: u64, path: EnginePath) -> Vec<f64> {
    (0..seeds)
        .map(|seed| {
            let steps = match path {
                EnginePath::Agent => {
                    let sched = UniformScheduler::seed_from_u64(seed);
                    let mut sim = Simulation::new(Frat, n, sched).unwrap();
                    let out = sim.run_until_single_leader(u64::MAX);
                    assert!(out.converged);
                    out.steps
                }
                EnginePath::Compiled | EnginePath::Jump => {
                    let mut sim = CountSimulation::new(Frat, n, rng(seed)).unwrap();
                    if matches!(path, EnginePath::Compiled) {
                        sim.set_jump_scheduler(false);
                    }
                    let out = sim.run_until_single_leader(u64::MAX);
                    assert!(out.converged);
                    assert_eq!(sim.leader_count(), 1);
                    out.steps
                }
            };
            steps as f64 / n as f64
        })
        .collect()
}

#[derive(Clone, Copy)]
enum EnginePath {
    Agent,
    Compiled,
    Jump,
}

#[test]
fn stabilization_law_agrees_across_all_three_engine_tiers() {
    // Fratricide at n = 64 converges in ~n² steps; with 150 seeds per tier
    // the jump path engages naturally in the sparse tail of every run (the
    // engage threshold needs the ~16 surviving leaders regime), so the test
    // genuinely exercises telescoped execution, not a disengaged scheduler.
    let n = 64;
    let seeds = 150;
    let agent = stabilization_sample(n, seeds, EnginePath::Agent);
    let compiled = stabilization_sample(n, seeds, EnginePath::Compiled);
    let jump = stabilization_sample(n, seeds, EnginePath::Jump);

    let hists = quantile_bins(&[&agent, &compiled, &jump], 6);
    let c = chi_square_homogeneity(&[&hists[0], &hists[1], &hists[2]]);
    assert!(
        c.accepts(0.001),
        "three-tier histograms diverge: chi2 = {:.2}, df = {}",
        c.statistic,
        c.df
    );

    // Binomial cross-check via Wilson intervals: the probability of
    // stabilizing within a fixed budget must agree between the jump path and
    // the per-step paths.
    let budget = n as f64; // parallel-time budget ~ E[T]/4: a sensitive quantile
    let hit = |sample: &[f64]| sample.iter().filter(|&&t| t <= budget).count() as u64;
    let (lo, hi) = wilson95(hit(&agent) + hit(&compiled), 2 * seeds);
    let p_jump = hit(&jump) as f64 / seeds as f64;
    // Widen by the jump sample's own Monte-Carlo noise.
    let slack = 1.96 * (p_jump * (1.0 - p_jump) / seeds as f64).sqrt();
    assert!(
        p_jump + slack >= lo && p_jump - slack <= hi,
        "P(T <= {budget}) jump = {p_jump:.3} outside Wilson interval [{lo:.3}, {hi:.3}]"
    );
}

#[test]
fn jump_engages_and_telescopes_the_fratricide_tail() {
    let mut sim = CountSimulation::new(Frat, 256, rng(7)).unwrap();
    let out = sim.run_until_single_leader(u64::MAX);
    assert!(out.converged);
    assert_eq!(sim.leader_count(), 1);
    let stats = sim.jump_stats();
    assert!(stats.episodes > 0, "scheduler never engaged");
    assert!(
        stats.skipped > out.steps / 2,
        "tail should be dominated by telescoped nulls: skipped {} of {}",
        stats.skipped,
        out.steps
    );
}

#[test]
fn silent_configuration_telescopes_whole_budgets_exactly() {
    // After fratricide stabilizes, every realizable pair is null: W_active
    // is 0 and arbitrary budgets must telescope in O(1) without touching
    // the configuration.
    let mut sim = CountSimulation::new(Frat, 128, rng(3)).unwrap();
    sim.run_until_single_leader(u64::MAX);
    let counts = sim.raw_counts().to_vec();
    let steps = sim.steps();
    sim.run(1_000_000_000_000);
    assert_eq!(sim.steps(), steps + 1_000_000_000_000);
    assert_eq!(sim.raw_counts(), &counts[..]);
    assert_eq!(sim.leader_count(), 1);
}

#[test]
fn manual_steps_between_jump_runs_keep_the_ledger_exact() {
    // Regression: step() mutates counts behind an engaged scheduler's back;
    // without dirtying the ledger, the next episode sampled against stale
    // weights — reproducibly panicking inside NullLedger::sample_active
    // once enough manual interactions had shifted the configuration.
    let mut sim = CountSimulation::new(Frat, 4096, rng(21)).unwrap();
    // Run until the scheduler engages in the sparse tail.
    while !sim.jump_engaged() {
        sim.run(4096);
        assert!(sim.steps() < 1 << 40, "scheduler never engaged");
    }
    // Execute many non-null interactions manually: the leader count and the
    // null-pair weights drift far from the ledger's last sync.
    let mut changed = 0;
    while changed < 900 && sim.leader_count() > 2 {
        if sim.step() {
            changed += 1;
        }
    }
    assert!(sim.jump_engaged());
    // Resuming batched execution must resync and stay exact to convergence.
    let out = sim.run_until_single_leader(u64::MAX);
    assert!(out.converged);
    assert_eq!(sim.leader_count(), 1);
}

#[test]
fn run_budgets_stay_exact_while_jumping() {
    let mut sim = CountSimulation::new(Frat, 64, rng(9)).unwrap();
    for chunk in [1u64, 7, 64, 1000, 4096, 100_000] {
        let before = sim.steps();
        sim.run(chunk);
        assert_eq!(sim.steps(), before + chunk);
    }
}

// ---------------------------------------------------------------------------
// Trajectory-level equivalence: deterministic replay via RNG inversion.
// ---------------------------------------------------------------------------

/// An `Rng64` yielding a scripted word sequence.
struct ReplayRng {
    words: Vec<u64>,
    pos: usize,
}

impl Rng64 for ReplayRng {
    fn next_u64(&mut self) -> u64 {
        let w = self.words.get(self.pos).copied().unwrap_or_else(|| {
            panic!("replay stream exhausted at word {}", self.pos);
        });
        self.pos += 1;
        w
    }
}

/// Scheduler weight of the ordered state pair under `counts`.
fn weight(counts: &[u64], s: usize, t: usize) -> u64 {
    counts[s] * counts[t].saturating_sub(u64::from(s == t))
}

/// Lexicographic rank of pair `(s, t)` in the active-candidate distribution:
/// total weight of active (non-known-null) pairs strictly before it.
fn active_rank(counts: &[u64], known: &HashSet<(usize, usize)>, s: usize, t: usize) -> u64 {
    let mut rank = 0;
    for ps in 0..counts.len() {
        for pt in 0..counts.len() {
            if (ps, pt) >= (s, t) {
                return rank;
            }
            if !known.contains(&(ps, pt)) {
                rank += weight(counts, ps, pt);
            }
        }
    }
    rank
}

/// Synthesizes the word that makes `Rng64::below(bound)` return `target`
/// without entering the rejection path (`bound ≤ 2^62` required).
fn invert_below(target: u64, bound: u64) -> u64 {
    assert!(bound <= 1 << 62 && target < bound);
    let x = ((((2 * target + 1) as u128) << 63) / bound as u128) as u64;
    // Self-check: the multiply-shift must land on `target` with a low half
    // clear of the threshold branch.
    let m = (x as u128) * (bound as u128);
    assert_eq!((m >> 64) as u64, target);
    assert!((m as u64) >= bound);
    x
}

/// Synthesizes the word that makes `Geometric::new(p).sample` return `k`,
/// or `None` when `k` is beyond the sampler's f64-resolution support.
fn invert_geometric(p: f64, k: u64) -> Option<u64> {
    let q = 1.0 - p;
    let target = q.powf(k as f64 + 0.5);
    if target <= 0.0 || target >= 1.0 {
        return None;
    }
    // unit_f64 = (word >> 11) · 2⁻⁵³ and the sampler uses u = 1 − unit_f64.
    let mantissa = ((1.0 - target) * (1u64 << 53) as f64).round() as u64;
    let geo = Geometric::new(p).expect("p in (0, 1]");
    for m in mantissa.saturating_sub(64)..=(mantissa + 64).min((1 << 53) - 1) {
        let word = m << 11;
        let mut probe = ReplayRng {
            words: vec![word],
            pos: 0,
        };
        if geo.sample(&mut probe) == k {
            return Some(word);
        }
    }
    None
}

/// Traces `steps` per-step interactions of the compiled engine, compresses
/// the known-null runs into jump episodes, crafts the RNG words that make a
/// jump-forced twin draw exactly those episodes, and asserts the twin
/// replays the execution configuration-for-configuration and
/// step-for-step. Returns the total number of interactions the twin
/// telescoped past (so callers can assert the replay exercised real jumps).
fn assert_jump_replays_compiled<P>(protocol: P, n: usize, steps: usize, seed: u64) -> u64
where
    P: LeaderElection + Clone,
{
    // Phase 1: per-step trace of the compiled engine.
    let mut tracer = CountSimulation::new(protocol.clone(), n, rng(seed)).unwrap();
    tracer.set_jump_scheduler(false);
    let mut trace = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (s, t, changed) = tracer.step_traced();
        trace.push((s, t, changed, tracer.raw_counts().to_vec()));
    }

    // Phases 2+3: compress known-null runs into episodes and invert each
    // episode's two RNG words against the jump twin's evolving state.
    let mut known: HashSet<(usize, usize)> = HashSet::new();
    let mut counts: Vec<u64> = vec![n as u64]; // the initial state holds everyone
    let w_total = (n as u64) * (n as u64 - 1);
    let mut words = Vec::new();
    // (steps consumed by episode, expected counts after, expected total steps)
    let mut episodes: Vec<(u64, Vec<u64>, u64)> = Vec::new();
    let mut run_nulls = 0u64;
    let mut truncated = false;
    for (i, (s, t, changed, counts_after)) in trace.iter().enumerate() {
        if known.contains(&(*s, *t)) {
            assert!(!changed, "known-null pair executed a change");
            run_nulls += 1;
            continue;
        }
        // Episode terminator: this draw comes from the twin's active
        // distribution.
        let w_null: u64 = known.iter().map(|&(a, b)| weight(&counts, a, b)).sum();
        let w_active = w_total - w_null;
        if w_null > 0 {
            let p = w_active as f64 / w_total as f64;
            let Some(word) = invert_geometric(p, run_nulls) else {
                // Beyond geometric f64 support (astronomically rare): stop
                // extending the replay; the prefix still verifies.
                truncated = true;
                break;
            };
            words.push(word);
        } else {
            assert_eq!(run_nulls, 0, "a null run can only consist of known nulls");
        }
        let mut grown = counts.clone();
        grown.resize(counts_after.len(), 0);
        let u = active_rank(&grown, &known, *s, *t);
        assert!(u < w_active);
        words.push(invert_below(u, w_active));
        if !changed {
            known.insert((*s, *t));
        }
        counts = counts_after.clone();
        episodes.push((run_nulls + 1, counts_after.clone(), i as u64 + 1));
        run_nulls = 0;
    }
    assert!(
        !episodes.is_empty(),
        "a {steps}-step trace always contains at least one first encounter"
    );

    // Phase 4: replay on a jump-forced twin driven by the crafted words.
    let replay = ReplayRng { words, pos: 0 };
    let mut twin = CountSimulation::<_, ReplayRng>::new(protocol, n, replay).unwrap();
    twin.force_jump_mode();
    let mut skipped = 0u64;
    for (consumed, expect_counts, expect_steps) in &episodes {
        twin.run(*consumed);
        skipped += consumed - 1;
        assert_eq!(twin.steps(), *expect_steps, "step counter diverged");
        assert_eq!(
            twin.raw_counts(),
            &expect_counts[..],
            "configuration diverged at step {expect_steps}"
        );
    }
    if !truncated {
        // Trailing known-null draws past the last episode change nothing, so
        // the tracer's final leader count matches the twin's.
        assert_eq!(twin.leader_count(), tracer.leader_count());
    }
    assert_eq!(twin.jump_stats().skipped, skipped);
    skipped
}

#[test]
fn jump_replays_fratricide_deterministically_with_real_skips() {
    // Fratricide at small n goes null-dominated quickly: the crafted replay
    // must contain genuine telescoped runs, not just length-0 skips.
    let mut total_skipped = 0;
    for seed in 0..8 {
        total_skipped += assert_jump_replays_compiled(Frat, 16, 400, seed);
    }
    assert!(
        total_skipped > 100,
        "replays exercised almost no telescoping: {total_skipped} skipped"
    );
}

proptest! {
    /// For arbitrary random transition tables: trace the compiled per-step
    /// engine, compress its null runs against an evolving known-null set,
    /// and craft an RNG stream that makes a jump-forced twin replay the
    /// execution exactly — same configurations, same step counters, same
    /// leader counts at every configuration change.
    #[test]
    fn jump_replays_compiled_trajectories_modulo_null_compression(
        k in 2u8..6,
        table_seed in 0u64..1_000_000,
        rng_seed in 0u64..1_000_000,
        n in 8usize..48,
    ) {
        // Null-biased tables so traces contain real null runs: half the
        // entries are identities.
        let mut t = Xoshiro256PlusPlus::seed_from_u64(table_seed);
        let table: Vec<(u8, u8)> = (0..(k as usize * k as usize))
            .map(|i| {
                if t.coin() {
                    ((i / k as usize) as u8, (i % k as usize) as u8)
                } else {
                    (t.below(k as u64) as u8, t.below(k as u64) as u8)
                }
            })
            .collect();
        let protocol = TableProtocol { k, table };
        assert_jump_replays_compiled(protocol, n, 256, rng_seed);
    }
}
