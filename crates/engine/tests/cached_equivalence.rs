//! The compiled-pair fast path must be **bit-identical** to the uncached
//! count engine: the cache consumes no randomness and `Protocol::transition`
//! is contractually deterministic, so under a shared RNG seed every state
//! count must match at every single step.
//!
//! This suite pins that equivalence on a fixed protocol and — via proptest —
//! on randomly generated small protocols (arbitrary transition tables over
//! `k` states), which also exercises lazy interning, cache growth, and
//! protocols with no structure whatsoever.

use pp_engine::{CountSimulation, LeaderElection, Protocol, Role};
use pp_rand::Xoshiro256PlusPlus;
use proptest::prelude::*;

/// A protocol given by an explicit transition table over states `0..k`.
#[derive(Debug, Clone)]
struct TableProtocol {
    k: u8,
    /// `table[(a * k + b)] = (a', b')`.
    table: Vec<(u8, u8)>,
}

impl Protocol for TableProtocol {
    type State = u8;
    type Output = Role;

    fn initial_state(&self) -> u8 {
        0
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        self.table[(*a as usize) * self.k as usize + (*b as usize)]
    }

    fn output(&self, s: &u8) -> Role {
        // Declare state 0 "leader" so the leader-tracking path is exercised.
        if *s == 0 {
            Role::Leader
        } else {
            Role::Follower
        }
    }
}

impl LeaderElection for TableProtocol {}

fn rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}

#[derive(Debug, Clone, Copy)]
struct Frat;

impl Protocol for Frat {
    type State = bool;
    type Output = Role;
    fn initial_state(&self) -> bool {
        true
    }
    fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
        if *a && *b {
            (true, false)
        } else {
            (*a, *b)
        }
    }
    fn output(&self, s: &bool) -> Role {
        if *s {
            Role::Leader
        } else {
            Role::Follower
        }
    }
}

impl LeaderElection for Frat {
    fn monotone_leaders(&self) -> bool {
        true
    }
}

#[test]
fn fratricide_is_step_for_step_identical() {
    for seed in 0..8 {
        let mut cached = CountSimulation::new(Frat, 128, rng(seed)).unwrap();
        let mut reference = CountSimulation::new(Frat, 128, rng(seed)).unwrap();
        reference.set_compiled_cache(false);
        for step in 0..4000 {
            assert_eq!(cached.step(), reference.step(), "seed {seed} step {step}");
            assert_eq!(
                cached.state_counts(),
                reference.state_counts(),
                "seed {seed} step {step}"
            );
            assert_eq!(cached.leader_count(), reference.leader_count());
            assert_eq!(cached.support_size(), reference.support_size());
        }
    }
}

#[test]
fn convergence_outcomes_are_identical() {
    for seed in 0..4 {
        let mut cached = CountSimulation::new(Frat, 96, rng(seed)).unwrap();
        // This suite pins bit-exactness of the cache alone; the jump
        // scheduler consumes the RNG stream differently and has its own
        // equivalence-in-law suite (tests/jump_equivalence.rs).
        cached.set_jump_scheduler(false);
        let mut reference = CountSimulation::new(Frat, 96, rng(seed)).unwrap();
        reference.set_compiled_cache(false);
        let a = cached.run_until_single_leader(u64::MAX);
        let b = reference.run_until_single_leader(u64::MAX);
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(cached.state_counts(), reference.state_counts());
    }
}

proptest! {
    #[test]
    fn random_protocols_are_step_for_step_identical(
        k in 2u8..6,
        table_seed in 0u64..1_000_000,
        rng_seed in 0u64..1_000_000,
        n in 2usize..64,
    ) {
        // Build a random transition table from the seed (deterministic).
        let mut t = Xoshiro256PlusPlus::seed_from_u64(table_seed);
        use pp_rand::Rng64;
        let table: Vec<(u8, u8)> = (0..(k as usize * k as usize))
            .map(|_| ((t.below(k as u64)) as u8, (t.below(k as u64)) as u8))
            .collect();
        let protocol = TableProtocol { k, table };

        let mut cached = CountSimulation::new(protocol.clone(), n, rng(rng_seed)).unwrap();
        // Jump off: bit-exactness of the cache is the property under test.
        cached.set_jump_scheduler(false);
        let mut reference = CountSimulation::new(protocol, n, rng(rng_seed)).unwrap();
        reference.set_compiled_cache(false);
        for _step in 0..256 {
            prop_assert_eq!(cached.step(), reference.step());
            prop_assert_eq!(cached.support_size(), reference.support_size());
            let a = cached.state_counts();
            let b = reference.state_counts();
            prop_assert_eq!(a, b);
        }
        // And the leader-tracking loop agrees too (first hitting time of a
        // single "state 0" agent, or the shared step budget).
        let a = cached.run_until_single_leader(cached.steps() + 512);
        let b = reference.run_until_single_leader(reference.steps() + 512);
        prop_assert_eq!(a, b);
        prop_assert_eq!(cached.state_counts(), reference.state_counts());
    }
}
