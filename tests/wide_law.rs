//! The wide engine's **auto policy** — heuristic batch engage/exit over
//! the whole lane set, lane/global compaction, and spill-out of
//! null-dominated lanes to the scalar engine — must execute the same law
//! as the scalar auto-tier engine: identical stabilization-time
//! distributions, pinned by chi-square homogeneity over pooled-quantile
//! bins (the same methodology as the four-tier scalar suite in
//! `tests/batch_equivalence.rs`).
//!
//! Three workloads cover the three heuristic regimes: fratricide at `n =
//! 64` (per-step chunks, spill into the `Θ(n²)` null tail), the paper's
//! `P_LL` at `n = 128` (per-step chunks, no spill — the protocol recycles
//! leaders), and fratricide at `n = 4096` (above the batch-tier population
//! floor: lockstep hypergeometric rounds, then spill). Spilled lanes
//! complete on a scalar `CountSimulation::from_counts` continuation — the
//! composite is the wide engine's production configuration, so the law
//! suite measures exactly what sweeps run.

use population_protocols::core::Pll;
use population_protocols::engine::{CountSimulation, LeaderElection, WideSimulation};
use population_protocols::rand::SeedSequence;
use population_protocols::stats::{chi_square_samples, wilson95};

const WIDTH: usize = 4;

/// Stabilization parallel times over `seeds` scalar auto-tier runs.
fn scalar_sample<P: LeaderElection + Clone>(
    protocol: &P,
    n: usize,
    seeds: usize,
    salt: u64,
) -> Vec<f64> {
    let seq = SeedSequence::new(salt);
    (0..seeds)
        .map(|seed| {
            let mut sim =
                CountSimulation::new(protocol.clone(), n, seq.rng_at(seed as u64)).expect("n >= 2");
            let out = sim.run_until_single_leader(u64::MAX);
            assert!(out.converged, "scalar seed {seed} did not converge");
            assert_eq!(sim.leader_count(), 1);
            out.steps as f64 / n as f64
        })
        .collect()
}

/// Stabilization parallel times over `seeds` lanes run through wide auto
/// bundles of `WIDTH`, spilled lanes finished on the scalar engine.
fn wide_sample<P: LeaderElection + Clone>(
    protocol: &P,
    n: usize,
    seeds: usize,
    salt: u64,
) -> Vec<f64> {
    assert_eq!(seeds % WIDTH, 0);
    let seq = SeedSequence::new(salt);
    let mut times = vec![f64::NAN; seeds];
    for bundle in 0..seeds / WIDTH {
        let rngs = (0..WIDTH)
            .map(|lane| seq.rng_at((bundle * WIDTH + lane) as u64))
            .collect();
        let mut wide = WideSimulation::new(protocol.clone(), n, rngs).expect("n >= 2");
        let election = wide.run_until_single_leader(u64::MAX);
        for (lane, outcome) in election.outcomes.iter().enumerate() {
            if let Some(outcome) = outcome {
                assert!(outcome.converged, "bundle {bundle} lane {lane}");
                times[bundle * WIDTH + lane] = outcome.steps as f64 / n as f64;
            }
        }
        for export in election.spilled {
            let lane = export.index;
            let start = export.steps;
            let mut scalar =
                CountSimulation::from_counts(protocol.clone(), export.counts, export.rng)
                    .expect("n >= 2");
            let out = scalar.run_until_single_leader(u64::MAX);
            assert!(out.converged, "bundle {bundle} spilled lane {lane}");
            assert_eq!(scalar.leader_count(), 1);
            times[bundle * WIDTH + lane] = (start + out.steps) as f64 / n as f64;
        }
    }
    assert!(times.iter().all(|t| t.is_finite()), "a lane was lost");
    times
}

/// Chi-square homogeneity of the scalar and wide stabilization samples,
/// plus a Wilson-interval cross-check at the scalar median.
fn assert_wide_law_equivalence<P: LeaderElection + Clone>(
    protocol: P,
    n: usize,
    seeds: usize,
    salt: u64,
    bins: usize,
) {
    let scalar = scalar_sample(&protocol, n, seeds, salt);
    let wide = wide_sample(&protocol, n, seeds, salt + 1_000_000);
    let c = chi_square_samples(&[&scalar, &wide], bins);
    assert!(
        c.accepts(0.001),
        "scalar/wide histograms diverge: chi2 = {:.2}, df = {}",
        c.statistic,
        c.df
    );

    // Binomial cross-check at a sensitive quantile: P(T <= scalar median)
    // must agree between the engines.
    let mut pooled = scalar.clone();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let budget = pooled[pooled.len() / 2];
    let hit = |sample: &[f64]| sample.iter().filter(|&&t| t <= budget).count() as u64;
    let (lo, hi) = wilson95(hit(&scalar), seeds as u64);
    let p_wide = hit(&wide) as f64 / seeds as f64;
    let slack = 1.96 * (p_wide * (1.0 - p_wide) / seeds as f64).sqrt();
    assert!(
        p_wide + slack >= lo && p_wide - slack <= hi,
        "P(T <= {budget}) wide = {p_wide:.3} outside Wilson interval [{lo:.3}, {hi:.3}]"
    );
}

#[test]
fn wide_auto_matches_scalar_law_on_fratricide() {
    // Per-step regime with a spill-heavy Θ(n²) null tail: every lane exits
    // through the export path and a scalar jump-tier continuation.
    assert_wide_law_equivalence(population_protocols::protocols::Fratricide, 64, 120, 0, 6);
}

#[test]
fn wide_auto_matches_scalar_law_on_pll() {
    let n = 128;
    assert_wide_law_equivalence(Pll::for_population(n).expect("n >= 2"), n, 120, 10_000, 6);
}

#[test]
fn wide_auto_matches_scalar_law_on_fratricide_batch_regime() {
    // Above the batch population floor: the lane set runs lockstep
    // hypergeometric rounds before spilling into the null tail, covering
    // the staged round (prefix lockstep, interleaved shuffles, collision
    // draws) in law, not just under the pinned bit-identity suite.
    assert_wide_law_equivalence(
        population_protocols::protocols::Fratricide,
        4096,
        60,
        20_000,
        5,
    );
}
