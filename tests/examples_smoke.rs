//! Smoke test: every example in `examples/` must build and run to
//! completion. The example set is discovered from the filesystem, so adding
//! an example automatically adds it to this test — examples cannot
//! silently rot.
//!
//! Examples run in release mode (they simulate populations up to 100k
//! agents; debug-mode runs would dominate the suite's wall clock) via the
//! same `cargo` binary that is running this test.

use std::path::Path;
use std::process::Command;

#[test]
fn every_example_runs_to_completion() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let examples_dir = manifest_dir.join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&examples_dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            let is_rs = path.extension().is_some_and(|e| e == "rs");
            is_rs.then(|| {
                path.file_stem()
                    .expect("file has a stem")
                    .to_string_lossy()
                    .into_owned()
            })
        })
        .collect();
    names.sort();
    assert!(
        !names.is_empty(),
        "no examples found in {}",
        examples_dir.display()
    );

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut failures = Vec::new();
    for name in &names {
        let output = Command::new(&cargo)
            .args(["run", "--release", "--quiet", "--example", name])
            .current_dir(manifest_dir)
            .output()
            .expect("cargo is runnable");
        if !output.status.success() {
            failures.push(format!(
                "example `{name}` exited with {}:\n{}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} examples failed:\n{}",
        failures.len(),
        names.len(),
        failures.join("\n---\n")
    );
}
