//! The four execution tiers of the count engine must execute the **same
//! law**: identical stabilization-time distributions across the reference
//! (uncached), compiled, jump, and batch tiers, pinned by chi-square
//! homogeneity over pooled-quantile bins for the paper's own `P_LL`,
//! fratricide, and the state-unbounded lottery.
//!
//! The batch tier is additionally exercised far outside its heuristic
//! engagement envelope (tiny populations force rounds of a handful of
//! interactions with frequent collisions), so the suite covers the bulk
//! path, the collision path, and the exact shuffled convergence walk on
//! every protocol. A second group of tests is the ROADMAP's
//! support-compaction regression: `UnboundedLottery` at `n = 2^20` interns
//! tens of thousands of states, and the compiled cache must *saturate and
//! recover* — never deactivate — with the fast tiers re-engaging once the
//! live support collapses.

use population_protocols::core::Pll;
use population_protocols::engine::{CountSimulation, EngineTier, LeaderElection};
use population_protocols::protocols::{Fratricide, UnboundedLottery};
use population_protocols::rand::{SeedSequence, Xoshiro256PlusPlus};
use population_protocols::stats::{chi_square_samples, wilson95};

/// The four execution tiers under comparison.
#[derive(Clone, Copy, Debug)]
enum Tier {
    Reference,
    Compiled,
    Jump,
    Batch,
}

const TIERS: [Tier; 4] = [Tier::Reference, Tier::Compiled, Tier::Jump, Tier::Batch];

fn tier_sim<P: LeaderElection>(
    protocol: P,
    n: usize,
    rng: Xoshiro256PlusPlus,
    tier: Tier,
) -> CountSimulation<P, Xoshiro256PlusPlus> {
    let mut sim = CountSimulation::new(protocol, n, rng).expect("n >= 2");
    match tier {
        Tier::Reference => sim.set_compiled_cache(false),
        Tier::Compiled => {
            sim.set_jump_scheduler(false);
            sim.set_batch_tier(false);
        }
        Tier::Jump => sim.set_batch_tier(false),
        Tier::Batch => sim.force_batch_mode(),
    }
    sim
}

/// Stabilization parallel times over `seeds` runs on one tier.
fn stabilization_sample<P: LeaderElection + Clone>(
    protocol: &P,
    n: usize,
    seeds: u64,
    salt: u64,
    tier: Tier,
) -> Vec<f64> {
    let seq = SeedSequence::new(salt);
    (0..seeds)
        .map(|seed| {
            let mut sim = tier_sim(protocol.clone(), n, seq.rng_at(seed), tier);
            let out = sim.run_until_single_leader(u64::MAX);
            assert!(out.converged, "{tier:?} seed {seed} did not converge");
            assert_eq!(sim.leader_count(), 1, "{tier:?} seed {seed}");
            assert_eq!(sim.steps(), out.steps, "{tier:?} seed {seed}");
            out.steps as f64 / n as f64
        })
        .collect()
}

/// Chi-square homogeneity of the four tiers' stabilization-time samples,
/// plus a Wilson-interval cross-check of the batch tier's probability of
/// stabilizing within the pooled median budget.
fn assert_four_tier_equivalence<P: LeaderElection + Clone>(
    protocol: P,
    n: usize,
    seeds: u64,
    salt: u64,
    bins: usize,
) {
    let samples: Vec<Vec<f64>> = TIERS
        .iter()
        .map(|&tier| stabilization_sample(&protocol, n, seeds, salt, tier))
        .collect();
    let refs: Vec<&[f64]> = samples.iter().map(|s| s.as_slice()).collect();
    let c = chi_square_samples(&refs, bins);
    assert!(
        c.accepts(0.001),
        "four-tier histograms diverge: chi2 = {:.2}, df = {}",
        c.statistic,
        c.df
    );

    // Binomial cross-check at a sensitive quantile: P(T <= pooled median)
    // must agree between the batch tier and the three established tiers.
    let mut pooled: Vec<f64> = samples[..3].iter().flatten().copied().collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let budget = pooled[pooled.len() / 2];
    let hit = |sample: &[f64]| sample.iter().filter(|&&t| t <= budget).count() as u64;
    let established: u64 = samples[..3].iter().map(|s| hit(s)).sum();
    let (lo, hi) = wilson95(established, 3 * seeds);
    let p_batch = hit(&samples[3]) as f64 / seeds as f64;
    let slack = 1.96 * (p_batch * (1.0 - p_batch) / seeds as f64).sqrt();
    assert!(
        p_batch + slack >= lo && p_batch - slack <= hi,
        "P(T <= {budget}) batch = {p_batch:.3} outside Wilson interval [{lo:.3}, {hi:.3}]"
    );
}

#[test]
fn four_tiers_agree_on_fratricide() {
    // n = 64 stabilizes in ~n² steps; every tier path is genuinely hot
    // (jump engages in the sparse tail, batch rounds collide constantly).
    assert_four_tier_equivalence(Fratricide, 64, 120, 0, 6);
}

#[test]
fn four_tiers_agree_on_pll() {
    let n = 128;
    assert_four_tier_equivalence(Pll::for_population(n).expect("n >= 2"), n, 120, 10_000, 6);
}

#[test]
fn four_tiers_agree_on_unbounded_lottery() {
    assert_four_tier_equivalence(UnboundedLottery, 96, 120, 20_000, 6);
}

#[test]
fn forced_batch_rounds_exercise_collisions_and_walks() {
    // At n = 32 the expected collision-free run is ~3 interactions: a full
    // election through the batch tier is dominated by collision handling
    // and ends in an exact walk — the paths a large-n benchmark never hits.
    let mut collision_total = 0;
    let mut walk_total = 0;
    let seq = SeedSequence::new(500);
    for seed in 0..20 {
        let mut sim = tier_sim(Fratricide, 32, seq.rng_at(seed), Tier::Batch);
        let out = sim.run_until_single_leader(u64::MAX);
        assert!(out.converged);
        assert_eq!(sim.leader_count(), 1);
        let stats = sim.batch_stats();
        assert_eq!(
            stats.bulk_interactions + stats.collision_interactions,
            out.steps
        );
        collision_total += stats.collision_interactions;
        walk_total += stats.exact_walks;
    }
    assert!(collision_total > 100, "collisions never exercised");
    assert!(walk_total > 0, "exact walk never exercised");
}

// ---------------------------------------------------------------------------
// Support-compaction regression (ROADMAP: unbounded-state protocols must not
// fall off the fast path).
// ---------------------------------------------------------------------------

#[test]
fn unbounded_lottery_keeps_fast_tiers_at_2_20() {
    // Seed-state behavior: UnboundedLottery at n = 2^20 interned > 4096
    // states within ~4M interactions, *deactivating* the compiled cache
    // (and with it the jump scheduler) for the rest of the run even though
    // the live support collapses to a few dozen states. With saturation +
    // compaction the cache must stay active throughout and the engine must
    // be back on a fast tier once the support fits again.
    let n = 1 << 20;
    let rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let mut sim = CountSimulation::new(UnboundedLottery, n, rng).expect("n >= 2");
    let chunk = n as u64;
    for _ in 0..6 {
        sim.run(chunk);
        assert!(
            sim.pair_cache().is_active(),
            "cache deactivated at {} steps ({} states seen)",
            sim.steps(),
            sim.distinct_states_seen()
        );
    }
    assert!(
        sim.distinct_states_seen() > 4096,
        "workload too small to regress: {} states",
        sim.distinct_states_seen()
    );
    // The live slot space is compacted: bounded by support plus the dead
    // slack the compaction trigger tolerates, far below the states seen.
    assert!(
        sim.raw_counts().len() < sim.distinct_states_seen() / 2,
        "id space was never compacted: {} live slots for {} states seen",
        sim.raw_counts().len(),
        sim.distinct_states_seen()
    );
    // Drive the election into its sparse tail: support collapses, the
    // cache covers every live id again, and a fast tier engages.
    let out = sim.run_until_single_leader(40 * (n as u64) * 30);
    assert!(out.converged, "election did not converge");
    assert_eq!(sim.leader_count(), 1);
    assert!(sim.pair_cache().is_active());
    assert!(
        !sim.pair_cache().is_saturated(sim.raw_counts().len()),
        "support collapsed but the cache is still saturated"
    );
    assert!(
        matches!(sim.active_tier(), EngineTier::Jump | EngineTier::Batch),
        "fast tier not engaged: {} (support {})",
        sim.active_tier(),
        sim.support_size()
    );
}

#[test]
fn compaction_keeps_distinct_state_count_exact() {
    // distinct_states_seen is the Table-1 "states used" metric; compaction
    // must not recount states that die and are later revisited. Compare a
    // compacting run against a compaction-free twin on the same RNG stream:
    // compaction consumes no randomness, so the executions are identical.
    use population_protocols::engine::EngineConfig;
    let n = 1 << 14;
    let run = |compaction: bool| {
        let rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let config = EngineConfig {
            compaction,
            ..EngineConfig::default()
        };
        let mut sim =
            CountSimulation::with_config(UnboundedLottery, n, rng, config).expect("n >= 2");
        // Heuristic tiers off: jump/batch draw differently once engaged,
        // and this twin comparison needs identical RNG consumption.
        sim.set_jump_scheduler(false);
        sim.set_batch_tier(false);
        sim.run(3 * n as u64);
        (sim.distinct_states_seen(), sim.state_counts(), sim.steps())
    };
    let (seen_on, counts_on, steps_on) = run(true);
    let (seen_off, counts_off, steps_off) = run(false);
    assert_eq!(steps_on, steps_off);
    assert_eq!(seen_on, seen_off, "compaction distorted the Table-1 metric");
    assert_eq!(counts_on, counts_off, "compaction distorted the execution");
    assert!(seen_on > 1000, "workload too small to exercise compaction");
}
