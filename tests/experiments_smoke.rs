//! Integration: every experiment of the reproduction suite runs end to end
//! in quick mode and produces well-formed output.

use population_protocols::sim::{run_experiment, EXPERIMENT_IDS};

#[test]
fn every_experiment_runs_in_quick_mode() {
    for id in EXPERIMENT_IDS {
        let output = run_experiment(id, true).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(output.id, id);
        assert!(!output.tables.is_empty(), "{id} produced no tables");
        for (name, table) in &output.tables {
            assert!(!table.is_empty(), "{id}/{name} is empty");
        }
        let md = output.to_markdown();
        assert!(md.contains(&format!("## `{id}`")));
    }
}

#[test]
fn confirmatory_experiments_report_no_violations() {
    // These experiments embed explicit bound checks; in quick mode they must
    // already hold (fixed seeds, tolerant thresholds).
    for id in ["lemma2", "lemma4", "lemma7"] {
        let output = run_experiment(id, true).expect("experiment runs");
        let md = output.to_markdown();
        assert!(
            !md.contains("VIOLATED") && !md.contains("| NO |"),
            "{id} reported a violation:\n{md}"
        );
    }
}
