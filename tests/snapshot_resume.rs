//! Integration: the engine's snapshot/resume contract over the real
//! protocols — a snapshot taken between driver calls, serialized, and
//! resumed must leave the remaining trajectory bit-identical to never
//! having paused — across all four execution tiers, heuristic tier
//! transitions, and mid-election cuts. Plus negative-path checks of the
//! public resume surface: corrupted bytes produce typed errors, never
//! panics.

use population_protocols::core::Pll;
use population_protocols::engine::{
    CountSimulation, LeaderElection, SnapshotError, SnapshotState, SNAPSHOT_VERSION,
};
use population_protocols::protocols::{Fratricide, UnboundedLottery};
use population_protocols::rand::Xoshiro256PlusPlus;
use proptest::prelude::*;

/// How a test pins the engine's execution tier before cutting.
#[derive(Debug, Clone, Copy)]
enum TierMode {
    /// Heuristic dispatch (compiled, with jump/batch free to engage).
    Auto,
    /// Uncached reference tier.
    Reference,
    /// Forced null-skipping jump tier.
    Jump,
    /// Forced hypergeometric batch tier.
    Batch,
}

const MODES: [TierMode; 4] = [
    TierMode::Auto,
    TierMode::Reference,
    TierMode::Jump,
    TierMode::Batch,
];

fn build<P>(
    protocol: P,
    n: usize,
    seed: u64,
    mode: TierMode,
) -> CountSimulation<P, Xoshiro256PlusPlus>
where
    P: LeaderElection,
{
    let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut sim = CountSimulation::new(protocol, n, rng).expect("n >= 2");
    match mode {
        TierMode::Auto => {}
        TierMode::Reference => sim.set_compiled_cache(false),
        TierMode::Jump => sim.force_jump_mode(),
        TierMode::Batch => sim.force_batch_mode(),
    }
    sim
}

/// Cuts `sim` here: snapshots, resumes from the bytes, and checks the
/// resumed simulation tracks an in-memory clone bit-for-bit through further
/// segments.
fn assert_cut_transparent<P>(protocol: P, sim: &CountSimulation<P, Xoshiro256PlusPlus>)
where
    P: LeaderElection + Clone,
    P::State: SnapshotState,
{
    let mut twin = sim.clone();
    let bytes = twin.snapshot();
    let mut resumed = CountSimulation::<P, Xoshiro256PlusPlus>::resume(protocol, &bytes)
        .expect("a just-taken snapshot resumes");
    assert_eq!(resumed.steps(), twin.steps());
    assert_eq!(resumed.state_counts(), twin.state_counts());
    for segment in [1024u64, 8192] {
        twin.run(segment);
        resumed.run(segment);
        assert_eq!(resumed.steps(), twin.steps());
        assert_eq!(
            resumed.state_counts(),
            twin.state_counts(),
            "after +{segment}"
        );
        assert_eq!(
            resumed.active_tier(),
            twin.active_tier(),
            "after +{segment}"
        );
    }
    assert_eq!(resumed.distinct_states_seen(), twin.distinct_states_seen());
}

const N: usize = 1 << 12;

proptest! {
    #[test]
    fn pll_cut_is_transparent_on_every_tier(
        seed in any::<u64>(),
        cut in 0u64..16_384,
        mode in 0usize..4,
    ) {
        let protocol = Pll::for_population(N).expect("n >= 2");
        let mut sim = build(protocol, N, seed, MODES[mode]);
        sim.run(cut);
        assert_cut_transparent(protocol, &sim);
    }

    #[test]
    fn fratricide_cut_is_transparent_on_every_tier(
        seed in any::<u64>(),
        cut in 0u64..16_384,
        mode in 0usize..4,
    ) {
        let mut sim = build(Fratricide, N, seed, MODES[mode]);
        sim.run(cut);
        assert_cut_transparent(Fratricide, &sim);
    }

    #[test]
    fn unbounded_lottery_cut_is_transparent_on_every_tier(
        seed in any::<u64>(),
        cut in 0u64..16_384,
        mode in 0usize..4,
    ) {
        let mut sim = build(UnboundedLottery, N, seed, MODES[mode]);
        sim.run(cut);
        assert_cut_transparent(UnboundedLottery, &sim);
    }
}

#[test]
fn election_outcomes_survive_a_mid_election_cut_on_every_tier() {
    // Cut inside `run_until_single_leader` territory (role tracking primed),
    // then race the resumed simulation against the clone to stabilization.
    fn check<P>(
        name: &str,
        mode: TierMode,
        twin: &mut CountSimulation<P, Xoshiro256PlusPlus>,
        bytes: &[u8],
        protocol: P,
    ) where
        P: LeaderElection,
        P::State: SnapshotState,
    {
        let mut resumed =
            CountSimulation::<P, Xoshiro256PlusPlus>::resume(protocol, bytes).expect("resumes");
        let a = twin.run_until_single_leader(u64::MAX);
        let b = resumed.run_until_single_leader(u64::MAX);
        assert_eq!(a, b, "{name} outcome diverged ({mode:?})");
        assert_eq!(twin.steps(), resumed.steps(), "{name} ({mode:?})");
        assert_eq!(
            twin.leader_count(),
            resumed.leader_count(),
            "{name} ({mode:?})"
        );
        assert_eq!(
            twin.state_counts(),
            resumed.state_counts(),
            "{name} ({mode:?})"
        );
    }

    for mode in MODES {
        let protocol = Pll::for_population(N).expect("n >= 2");
        let mut sim = build(protocol, N, 21, mode);
        let _ = sim.run_until_single_leader(10_000);
        check("pll", mode, &mut sim.clone(), &sim.snapshot(), protocol);

        let mut sim = build(Fratricide, N, 22, mode);
        let _ = sim.run_until_single_leader(10_000);
        check(
            "fratricide",
            mode,
            &mut sim.clone(),
            &sim.snapshot(),
            Fratricide,
        );

        let mut sim = build(UnboundedLottery, N, 23, mode);
        let _ = sim.run_until_single_leader(10_000);
        check(
            "lottery",
            mode,
            &mut sim.clone(),
            &sim.snapshot(),
            UnboundedLottery,
        );
    }
}

#[test]
fn heuristic_tier_transition_is_crossed_transparently() {
    // At n = 2^14 fratricide engages batch/jump on its own; cut right after
    // the transition and again deep inside the engaged tier.
    let mut sim = build(Fratricide, 1 << 14, 31, TierMode::Auto);
    sim.run(1 << 12);
    assert!(
        sim.batch_engaged() || sim.jump_engaged(),
        "expected a heuristic tier engagement"
    );
    assert_cut_transparent(Fratricide, &sim);
    sim.run(1 << 16);
    assert_cut_transparent(Fratricide, &sim);
}

#[test]
#[ignore = "2^20-agent snapshot roundtrip; run with --release -- --ignored"]
fn snapshot_roundtrip_at_two_to_the_twenty() {
    let n = 1 << 20;
    let protocol = Pll::for_population(n).expect("n >= 2");
    let mut sim = build(protocol, n, 41, TierMode::Auto);
    sim.run(200_000);
    let bytes = sim.snapshot();
    let mut twin = sim.clone();
    let mut resumed =
        CountSimulation::<_, Xoshiro256PlusPlus>::resume(protocol, &bytes).expect("resumes");
    let a = twin.run_until_single_leader(u64::MAX);
    let b = resumed.run_until_single_leader(u64::MAX);
    assert_eq!(a, b);
    assert_eq!(twin.state_counts(), resumed.state_counts());
    assert_eq!(twin.leader_count(), 1);
}

fn pll_snapshot() -> (Pll, Vec<u8>) {
    let protocol = Pll::for_population(256).expect("n >= 2");
    let mut sim = build(protocol, 256, 51, TierMode::Auto);
    sim.run(2_000);
    (protocol, sim.snapshot())
}

type PllSim = CountSimulation<Pll, Xoshiro256PlusPlus>;

#[test]
fn every_truncation_is_rejected_with_a_typed_error() {
    let (protocol, bytes) = pll_snapshot();
    for len in 0..bytes.len() {
        let err = PllSim::resume(protocol, &bytes[..len]).expect_err("truncated snapshot accepted");
        // Any variant is acceptable — the property is a typed error, not a
        // panic — but the error must render.
        let _ = err.to_string();
    }
}

#[test]
fn wrong_magic_and_future_version_are_identified() {
    let (protocol, bytes) = pll_snapshot();

    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        PllSim::resume(protocol, &bad),
        Err(SnapshotError::BadMagic)
    ));

    // The version field sits right after the 8-byte magic and is validated
    // before the checksum, so a from-the-future version is reported as such
    // rather than as generic corruption.
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    match PllSim::resume(protocol, &bad) {
        Err(SnapshotError::UnsupportedVersion { found }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn corrupted_bytes_error_instead_of_panicking() {
    let (protocol, bytes) = pll_snapshot();
    // Sampled single-byte corruption across the whole buffer (every offset
    // is covered by the engine's own unit tests on a smaller protocol).
    for at in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[at] ^= 0x20;
        assert!(
            PllSim::resume(protocol, &bad).is_err(),
            "corruption at byte {at} went unnoticed"
        );
    }
}
