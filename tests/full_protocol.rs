//! Integration: the full `P_LL` pipeline across engines, parameters, and
//! population sizes — the paper's headline behavior end to end.

use population_protocols::core::{Pll, PllParams, Status, SymPll};
use population_protocols::engine::{CountSimulation, Simulation, UniformScheduler};
use population_protocols::rand::{SeedSequence, Xoshiro256PlusPlus};

#[test]
fn pll_elects_exactly_one_leader_across_sizes() {
    for n in [2usize, 3, 5, 17, 100, 1000] {
        let pll = Pll::for_population(n).expect("n >= 2");
        let mut sim =
            Simulation::new(pll, n, UniformScheduler::seed_from_u64(n as u64)).expect("n >= 2");
        let outcome = sim.run_until_single_leader(u64::MAX);
        assert!(outcome.converged, "n={n}");
        assert_eq!(sim.leader_count(), 1, "n={n}");
        // Permanence: the elected leader is never lost (safe configuration).
        sim.run(100_000);
        assert_eq!(sim.leader_count(), 1, "n={n} lost its leader");
    }
}

#[test]
fn both_engines_elect_on_the_same_protocol() {
    let n = 400;
    let pll = Pll::for_population(n).expect("n >= 2");
    let mut agent = Simulation::new(pll, n, UniformScheduler::seed_from_u64(9)).expect("n >= 2");
    assert!(agent.run_until_single_leader(u64::MAX).converged);

    let pll = Pll::for_population(n).expect("n >= 2");
    let rng = Xoshiro256PlusPlus::seed_from_u64(9);
    let mut count = CountSimulation::new(pll, n, rng).expect("n >= 2");
    assert!(count.run_until_single_leader(u64::MAX).converged);
    assert_eq!(count.leader_count(), 1);
}

#[test]
fn oversized_size_knowledge_still_elects() {
    // m must be >= lg n; larger m only slows the clock down.
    let n = 64;
    let params = PllParams::new(32).expect("m >= 1");
    params.check_covers(n).expect("32 >= lg 64");
    let mut sim =
        Simulation::new(Pll::new(params), n, UniformScheduler::seed_from_u64(5)).expect("n >= 2");
    assert!(sim.run_until_single_leader(u64::MAX).converged);
}

#[test]
fn undersized_size_knowledge_converges_via_backup() {
    // Violating m >= lg n voids the O(log n) analysis but BackUp still
    // guarantees eventual election (possibly slower).
    let n = 512;
    let params = PllParams::new(3).expect("m >= 1");
    assert!(params.check_covers(n).is_err());
    let mut sim =
        Simulation::new(Pll::new(params), n, UniformScheduler::seed_from_u64(6)).expect("n >= 2");
    let outcome = sim.run_until_single_leader(2_000_000_000);
    assert!(outcome.converged, "undersized m failed to elect at all");
}

#[test]
fn symmetric_and_asymmetric_agree_on_outcome() {
    let n = 150;
    for seed in [1u64, 2, 3] {
        let mut asym = Simulation::new(
            Pll::for_population(n).expect("n >= 2"),
            n,
            UniformScheduler::seed_from_u64(seed),
        )
        .expect("n >= 2");
        assert!(asym.run_until_single_leader(u64::MAX).converged);

        let mut sym = Simulation::new(
            SymPll::for_population(n).expect("n >= 3"),
            n,
            UniformScheduler::seed_from_u64(seed),
        )
        .expect("n >= 2");
        assert!(sym.run_until_single_leader(u64::MAX).converged);
    }
}

#[test]
fn lemma4_invariants_hold_along_a_long_run() {
    let n = 200;
    let pll = Pll::for_population(n).expect("n >= 2");
    let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(11)).expect("n >= 2");
    let assigned = sim.run_until(64, u64::MAX, |sim| {
        sim.states().iter().all(|s| s.status != Status::X)
    });
    assert!(assigned.converged);
    for _ in 0..100 {
        sim.run(500);
        let a = sim
            .states()
            .iter()
            .filter(|s| s.status == Status::A)
            .count();
        let b = sim
            .states()
            .iter()
            .filter(|s| s.status == Status::B)
            .count();
        let f = sim.states().iter().filter(|s| !s.leader).count();
        assert!(a * 2 >= n, "|V_A| < n/2");
        assert!(f * 2 >= n, "|V_F| < n/2");
        assert!(b >= 1, "no timer agents");
    }
}

#[test]
fn deterministic_replay_reproduces_executions() {
    let n = 128;
    let run = |seed: u64| -> (u64, usize) {
        let pll = Pll::for_population(n).expect("n >= 2");
        let mut sim =
            Simulation::new(pll, n, UniformScheduler::seed_from_u64(seed)).expect("n >= 2");
        let o = sim.run_until_single_leader(u64::MAX);
        (o.steps, sim.leader_count())
    };
    assert_eq!(run(77), run(77), "same seed, same execution");
}

#[test]
fn seed_sequence_drives_independent_runs() {
    let n = 64;
    let seq = SeedSequence::new(123);
    let times: Vec<u64> = (0..4)
        .map(|i| {
            let pll = Pll::for_population(n).expect("n >= 2");
            let mut sim = Simulation::new(pll, n, UniformScheduler::seed_from_u64(seq.seed_at(i)))
                .expect("n >= 2");
            sim.run_until_single_leader(u64::MAX).steps
        })
        .collect();
    // Different seeds essentially never give identical stabilization steps.
    assert!(times.windows(2).any(|w| w[0] != w[1]));
}
