//! Integration: the observability layer's **bit-identity contract** — an
//! attached [`EngineObserver`] (with or without a trajectory sampler)
//! consumes no randomness and leaves the execution bit-identical to a
//! detached run: same step counts, same final configurations, and same
//! `snapshot()` bytes, across all four scalar tiers, all three round laws,
//! and the wide engine's lanes. Plus schema round-trips for the JSONL
//! event log and the metrics JSON.

use population_protocols::core::Pll;
use population_protocols::engine::{
    CountSimulation, EngineConfig, EngineEvent, EngineMetrics, EngineObserver, LawMode,
    LeaderElection, SnapshotState, WideSimulation, WideTierPolicy,
};
use population_protocols::rand::{SeedSequence, Xoshiro256PlusPlus};
use proptest::prelude::*;

/// How a test pins the engine's execution tier.
#[derive(Debug, Clone, Copy)]
enum TierMode {
    Auto,
    Reference,
    Jump,
    Batch,
}

const MODES: [TierMode; 4] = [
    TierMode::Auto,
    TierMode::Reference,
    TierMode::Jump,
    TierMode::Batch,
];

const LAWS: [LawMode; 3] = [
    LawMode::SequenceExpansion,
    LawMode::Contingency,
    LawMode::MultiRound,
];

fn build<P>(
    protocol: P,
    n: usize,
    seed: u64,
    mode: TierMode,
    law: LawMode,
) -> CountSimulation<P, Xoshiro256PlusPlus>
where
    P: LeaderElection,
{
    let rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let config = EngineConfig {
        law_mode: law,
        ..EngineConfig::default()
    };
    let mut sim = CountSimulation::with_config(protocol, n, rng, config).expect("n >= 2");
    match mode {
        TierMode::Auto => {}
        TierMode::Reference => sim.set_compiled_cache(false),
        TierMode::Jump => sim.force_jump_mode(),
        TierMode::Batch => sim.force_batch_mode(),
    }
    sim
}

/// Drives an observed twin and a detached twin through the same segments
/// and asserts every observable — including the snapshot bytes — matches.
fn assert_observation_invisible<P>(protocol: P, n: usize, seed: u64, mode: TierMode, law: LawMode)
where
    P: LeaderElection + Clone,
    P::State: SnapshotState,
{
    let mut plain = build(protocol.clone(), n, seed, mode, law);
    let mut watched = build(protocol, n, seed, mode, law);
    watched.set_observer(EngineObserver::new().with_trajectory(997));
    for segment in [509u64, 4096, 12_000] {
        plain.run(segment);
        watched.run(segment);
        assert_eq!(plain.steps(), watched.steps(), "steps after +{segment}");
        assert_eq!(
            plain.state_counts(),
            watched.state_counts(),
            "counts after +{segment} ({mode:?}, {law})"
        );
    }
    let a = plain.run_until_single_leader(200_000);
    let b = watched.run_until_single_leader(200_000);
    assert_eq!(a, b, "election outcome diverged ({mode:?}, {law})");
    assert_eq!(plain.leader_count(), watched.leader_count());
    let observer = watched.take_observer().expect("observer attached");
    assert_eq!(
        plain.snapshot(),
        watched.snapshot(),
        "snapshot bytes diverged ({mode:?}, {law})"
    );
    // The trajectory's final row reflects the reported outcome.
    let trace = observer.trajectory().expect("sampler attached");
    assert!(!trace.is_empty(), "trajectory recorded nothing");
    assert_eq!(trace.last_step(), Some(b.steps));
    if b.converged {
        assert_eq!(trace.last_value("leaders"), Some(1.0));
    }
}

proptest! {
    #[test]
    fn observation_is_invisible_on_every_tier_and_law(
        seed in any::<u64>(),
        mode in 0usize..4,
        law in 0usize..3,
    ) {
        let n = 1 << 11;
        let protocol = Pll::for_population(n).expect("n >= 2");
        assert_observation_invisible(protocol, n, seed, MODES[mode], LAWS[law]);
    }
}

#[test]
fn observation_is_invisible_on_the_heuristic_batch_crossover() {
    // n = 2^13 fratricide crosses Compiled → Batch/Jump on its own.
    use population_protocols::protocols::Fratricide;
    for law in LAWS {
        assert_observation_invisible(Fratricide, 1 << 13, 7, TierMode::Auto, law);
    }
}

#[test]
fn observation_is_invisible_on_wide_lanes() {
    let n = 1 << 12;
    let protocol = Pll::for_population(n).expect("n >= 2");
    for policy in [
        WideTierPolicy::Auto,
        WideTierPolicy::PinnedPerStep,
        WideTierPolicy::PinnedBatch,
        WideTierPolicy::LawOnly,
    ] {
        let seq = SeedSequence::new(1234);
        let rngs = |s: &SeedSequence| (0..4u64).map(|i| s.rng_at(i)).collect();
        let mut plain =
            WideSimulation::with_config(protocol, n, rngs(&seq), EngineConfig::default(), policy)
                .expect("n >= 2");
        let mut watched =
            WideSimulation::with_config(protocol, n, rngs(&seq), EngineConfig::default(), policy)
                .expect("n >= 2");
        watched.set_observer(EngineObserver::new());
        plain.run(20_000);
        watched.run(20_000);
        assert_eq!(plain.steps(), watched.steps(), "{policy:?}");
        for pos in 0..plain.lanes() {
            assert_eq!(
                plain.lane_state_counts(pos),
                watched.lane_state_counts(pos),
                "{policy:?} lane {pos}"
            );
        }
        let a = plain.run_until_single_leader(u64::MAX);
        let b = watched.run_until_single_leader(u64::MAX);
        assert_eq!(a.outcomes, b.outcomes, "{policy:?}");
        assert_eq!(a.spilled.len(), b.spilled.len(), "{policy:?}");
        let metrics = watched.metrics();
        assert_eq!(metrics.population, n as u64);
        assert_eq!(metrics.tier_usage, plain.tier_usage());
    }
}

#[test]
fn metrics_and_events_survive_their_serialized_forms() {
    let n = 1 << 12;
    let protocol = Pll::for_population(n).expect("n >= 2");
    let mut sim = build(protocol, n, 99, TierMode::Auto, LawMode::SequenceExpansion);
    sim.set_observer(EngineObserver::new().with_trajectory(512));
    let _ = sim.run_until_single_leader(200_000);
    let _ = sim.snapshot();

    let metrics = sim.metrics();
    let parsed = EngineMetrics::from_json(&metrics.to_json()).expect("metrics JSON round-trips");
    assert_eq!(metrics, parsed);

    let observer = sim.observer().expect("observer attached");
    assert!(
        !observer.events().is_empty(),
        "an auto-tier election must emit events"
    );
    for line in observer.events_to_jsonl().lines() {
        let event = EngineEvent::parse_json_line(line)
            .unwrap_or_else(|| panic!("event line failed to parse: {line}"));
        assert_eq!(event.to_json_line(), line);
    }
}

#[test]
fn metrics_survive_snapshot_resume() {
    let n = 1 << 12;
    let protocol = Pll::for_population(n).expect("n >= 2");
    let mut sim = build(protocol, n, 17, TierMode::Auto, LawMode::SequenceExpansion);
    sim.run(30_000);
    let before = sim.metrics();
    assert_eq!(before.tier_usage.total(), sim.steps());
    let bytes = sim.snapshot();
    let resumed =
        CountSimulation::<Pll, Xoshiro256PlusPlus>::resume(protocol, &bytes).expect("resumes");
    let after = resumed.metrics();
    assert_eq!(before.tier_usage, after.tier_usage);
    assert_eq!(before.jump, after.jump);
    assert_eq!(before.batch, after.batch);
    assert_eq!(before.steps, after.steps);
}
