//! Integration: exhaustive verification (`pp-verify`) applied to the
//! workspace's protocols — the paper's Section 2 definitions checked on
//! small populations, plus bounded checks on `P_LL` itself.

use population_protocols::core::{Coin, Pll, PllParams, SymPll};
use population_protocols::engine::{Protocol, Role};
use population_protocols::protocols::{Fratricide, UnboundedLottery};
use population_protocols::verify::{verify_leader_election, ReachabilityGraph};

#[test]
fn fratricide_is_exhaustively_correct() {
    for n in 2..=8 {
        let report = verify_leader_election(&Fratricide, n, 100_000).expect("small space");
        assert!(report.is_correct(), "n={n}: {report:?}");
        assert!(report.complete);
        assert!(report.monotone);
    }
}

#[test]
fn lottery_is_exhaustively_correct_bounded() {
    // The lottery's state space is unbounded; a bounded check still proves
    // the invariants on everything reachable within the budget.
    let report = verify_leader_election(&UnboundedLottery, 3, 30_000).expect("bounded");
    assert!(report.never_leaderless);
    assert!(report.monotone);
    assert!(report.safe_configs > 0);
}

#[test]
fn pll_bounded_exhaustive_safety() {
    // P_LL with the smallest parameters on 3 agents: bounded exploration of
    // the reachable space. Timer counters make the space large; invariants
    // checked on everything explored are still genuine theorems for those
    // configurations.
    let pll = Pll::new(PllParams::new(1).expect("m >= 1"));
    let g = ReachabilityGraph::explore_bounded(&pll, 3, 60_000).expect("bounded exploration");
    assert!(g.len() > 1_000, "explored {} configurations", g.len());
    // Never leaderless.
    let leaders =
        |c: &[<Pll as Protocol>::State]| c.iter().filter(|s| pll.output(s) == Role::Leader).count();
    assert!(
        g.check_invariant(|c| leaders(c) >= 1).is_none(),
        "a reachable configuration lost every leader"
    );
    // Lemma 4 shape: at least one timer agent once anyone has a status.
    assert!(
        g.check_invariant(|c| {
            let assigned = c
                .iter()
                .filter(|s| s.status != population_protocols::core::Status::X)
                .count();
            let timers = c.iter().filter(|s| s.is_b()).count();
            assigned == 0 || timers >= 1
        })
        .is_none(),
        "status assignment without a timer agent"
    );
}

#[test]
fn sym_pll_fairness_invariant_exhaustively_bounded() {
    // The #F0 = #F1 invariant over every explored reachable configuration —
    // an exhaustive (not sampled) guarantee for the symmetric coin
    // machinery of Section 4.
    let pll = SymPll::new(PllParams::new(1).expect("m >= 1"));
    let g = ReachabilityGraph::explore_bounded(&pll, 3, 60_000).expect("bounded exploration");
    assert!(g.len() > 1_000);
    assert!(
        g.check_invariant(|c| {
            let f0 = c.iter().filter(|s| s.coin() == Some(Coin::F0)).count();
            let f1 = c.iter().filter(|s| s.coin() == Some(Coin::F1)).count();
            f0 == f1
        })
        .is_none(),
        "coin pools diverged in a reachable configuration"
    );
    // Leaders never vanish in the symmetric variant either.
    assert!(g
        .check_invariant(|c| c.iter().any(|s| s.is_leader()))
        .is_none());
}

#[test]
fn monotone_leader_count_exhaustively_bounded_for_pll() {
    let pll = Pll::new(PllParams::new(1).expect("m >= 1"));
    let g = ReachabilityGraph::explore_bounded(&pll, 3, 20_000).expect("bounded exploration");
    let leaders =
        |c: &[<Pll as Protocol>::State]| c.iter().filter(|s| pll.output(s) == Role::Leader).count();
    for id in 0..g.len() {
        let here = leaders(g.config(id));
        for &succ in g.successors(id) {
            assert!(
                leaders(g.config(succ)) <= here,
                "leader count increased along an edge"
            );
        }
    }
}
