//! Integration: the paper's quantitative claims cross-checked end to end —
//! closed forms vs. exact chain solves vs. Monte-Carlo simulation.

use population_protocols::core::{Pll, SymPll};
use population_protocols::engine::epidemic::{lemma2_horizon, Epidemic};
use population_protocols::engine::{Simulation, UniformScheduler};
use population_protocols::protocols::Fratricide;
use population_protocols::rand::{SeedSequence, Xoshiro256PlusPlus};
use population_protocols::stats::{fit_power_law, theory, wilson95, Summary};
use population_protocols::verify::MarkovChain;

#[test]
fn three_views_of_fratricide_agree() {
    // Closed form, exact Markov-chain solve, and Monte Carlo must all
    // describe the same expected stabilization time.
    let n = 6;
    let closed = Fratricide::expected_steps(n);
    let chain = MarkovChain::build(&Fratricide, n, 100_000).expect("tiny space");
    let exact = chain
        .expected_steps_to(|c| c.iter().filter(|s| s.leader_flag()).count() == 1)
        .expect("reachable");
    assert!(
        (closed - exact).abs() < 1e-6,
        "closed {closed} vs exact {exact}"
    );

    let seeds = SeedSequence::new(17);
    let runs = 3000;
    let mut total = 0u64;
    for i in 0..runs {
        let mut sim = Simulation::new(
            Fratricide,
            n,
            UniformScheduler::seed_from_u64(seeds.seed_at(i)),
        )
        .expect("n >= 2");
        total += sim.run_until_single_leader(u64::MAX).steps;
    }
    let mc = total as f64 / runs as f64;
    assert!((mc / exact - 1.0).abs() < 0.06, "mc {mc} vs exact {exact}");
}

// Fratricide's state is a bare bool; give the test a readable accessor.
trait LeaderFlag {
    fn leader_flag(&self) -> bool;
}
impl LeaderFlag for bool {
    fn leader_flag(&self) -> bool {
        *self
    }
}

#[test]
fn pll_beats_fratricide_with_a_widening_gap() {
    // The Table 1 shape as a hard assertion: the speedup factor grows with n.
    let seeds = SeedSequence::new(23);
    let speedup = |n: usize| -> f64 {
        let runs = 8;
        let mean = |pll: bool| -> f64 {
            let mut total = 0.0;
            for i in 0..runs {
                let seed = seeds.seed_at((n as u64) << 8 | i | u64::from(pll) << 32);
                let sched = UniformScheduler::seed_from_u64(seed);
                let steps = if pll {
                    let mut sim =
                        Simulation::new(Pll::for_population(n).expect("n >= 2"), n, sched)
                            .expect("n >= 2");
                    sim.run_until_single_leader(u64::MAX).steps
                } else {
                    let mut sim = Simulation::new(Fratricide, n, sched).expect("n >= 2");
                    sim.run_until_single_leader(u64::MAX).steps
                };
                total += steps as f64;
            }
            total / runs as f64
        };
        mean(false) / mean(true)
    };
    let s_small = speedup(256);
    let s_large = speedup(1024);
    assert!(s_large > s_small, "gap must widen: {s_small} -> {s_large}");
    assert!(s_large > 5.0, "large-n speedup should be substantial");
}

#[test]
fn epidemic_tail_respects_lemma2_with_wilson_ci() {
    let n = 512;
    let t = ((n as f64).ln() + 1.0) * n as f64;
    let horizon = lemma2_horizon(n, n, t as u64);
    let bound = theory::epidemic_tail_bound(n as u64, t);
    let seeds = SeedSequence::new(29);
    let trials = 400;
    let mut failures = 0u64;
    for i in 0..trials {
        let mut ep = Epidemic::whole_population(n, 0).expect("n >= 2");
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seeds.seed_at(i));
        if ep.run_to_completion(&mut rng, horizon).is_err() {
            failures += 1;
        }
    }
    // The lower end of the 95% interval must stay below the bound.
    let (lo, _hi) = wilson95(failures, trials);
    assert!(lo <= bound, "lower CI {lo} exceeds Lemma 2 bound {bound}");
}

#[test]
fn pll_scaling_exponent_is_sublinear_end_to_end() {
    let seeds = SeedSequence::new(31);
    let mut points = Vec::new();
    for &n in &[256usize, 512, 1024, 2048] {
        let mut summary = Summary::new();
        for i in 0..10 {
            let mut sim = Simulation::new(
                Pll::for_population(n).expect("n >= 2"),
                n,
                UniformScheduler::seed_from_u64(seeds.seed_at((n as u64) << 8 | i)),
            )
            .expect("n >= 2");
            summary.push(sim.run_until_single_leader(u64::MAX).parallel_time(n));
        }
        points.push((n as f64, summary.mean()));
    }
    let exponent = fit_power_law(&points).slope;
    assert!(
        exponent < 0.5,
        "P_LL time exponent {exponent} should be far below linear"
    );
}

#[test]
fn symmetric_pll_matches_asymmetric_scaling_shape() {
    let seeds = SeedSequence::new(37);
    let mean = |n: usize| -> f64 {
        let mut total = 0.0;
        for i in 0..8 {
            let mut sim = Simulation::new(
                SymPll::for_population(n).expect("n >= 3"),
                n,
                UniformScheduler::seed_from_u64(seeds.seed_at((n as u64) << 8 | i)),
            )
            .expect("n >= 2");
            total += sim.run_until_single_leader(u64::MAX).parallel_time(n);
        }
        total / 8.0
    };
    let r = mean(1024) / mean(256);
    // Sub-linear growth; linear would be 4.
    assert!(r < 3.0, "symmetric growth ratio {r} too steep");
}

#[test]
fn qe_horizon_constant_matches_theory_module() {
    // The experiment harness and the theory module must agree on the
    // ⌊21·n·ln n⌋ horizon the lemmas share.
    for n in [256u64, 4096] {
        let expect = (21.0 * n as f64 * (n as f64).ln()).floor() as u64;
        assert_eq!(theory::qe_horizon(n), expect);
    }
}
