//! Jump-scheduler scale demonstration: stabilization sweeps at population
//! sizes whose step counts (`Θ(n²)` for fratricide — `2.4 × 10¹⁶`
//! interactions per run at `n = 2^28`) are unreachable for any per-step
//! engine, completing in seconds because the null tail telescopes into
//! `O(n)` executed episodes.
//!
//! Ignored by default: the numbers only make sense in release builds
//! (`cargo test --release --test jump_scale -- --ignored`); the default
//! debug-mode tier-1 run skips them.

use population_protocols::protocols::Fratricide;
use population_protocols::sim::stabilization_sweep;

#[test]
#[ignore = "release-scale demonstration: run with --release -- --ignored"]
fn fratricide_sweep_at_2_pow_28_converges_under_the_default_budget() {
    let points = stabilization_sweep(|_| Fratricide, &[1 << 28], 2, 11, u64::MAX);
    assert_eq!(points[0].unconverged, 0);
    assert_eq!(points[0].times.count(), 2);
    // E[parallel stabilization time] ≈ n, but the two-leader stage is
    // Exp-distributed with mean n/2, so a 2-seed mean is noisy by design:
    // this is a loose order-of-magnitude smoke bound. The tight law checks
    // live at small n (tests/jump_equivalence.rs) and the sub-epsilon
    // geometric regression (this scale's real failure mode) in pp-rand.
    let mean = points[0].times.mean();
    let n = (1u64 << 28) as f64;
    let ratio = mean / n;
    assert!(
        (0.05..20.0).contains(&ratio),
        "mean parallel time {mean} not on the Θ(n) scale at n = 2^28"
    );
}
