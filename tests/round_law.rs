//! The batch tier's **round laws** must execute the same law: identical
//! stabilization-time distributions whether a collision-free round is
//! materialized by sequence expansion (the bit-identical default), drawn
//! directly as a per-ordered-pair contingency table, or chained into
//! multi-round fresh/used episodes — pinned by chi-square homogeneity over
//! pooled-quantile bins against the reference (uncached) tier, the same
//! methodology as the four-tier suite in `tests/batch_equivalence.rs`.
//!
//! Three regimes: forced-batch elections at tiny `n` (rounds of a handful
//! of interactions, collisions and exact walks dominate — fratricide and
//! the paper's `P_LL`), auto-tier elections at `n = 4096` (above the batch
//! population floor: genuine `Θ(√n)` rounds with the contingency cells
//! path hot on fratricide's two-state support), and the wide engine's
//! `LawOnly` policy (one shared run-length inversion and responder index
//! stream across the lane set, per-lane contingency cells), compared at a
//! fixed step budget through the leader-count distribution. A forced
//! multi-round test asserts episodes genuinely chain segments, and every
//! law mode must survive the snapshot round-trip bit-for-bit.

use population_protocols::core::Pll;
use population_protocols::engine::{
    CountSimulation, EngineConfig, LawMode, LeaderElection, WideSimulation, WideTierPolicy,
};
use population_protocols::protocols::Fratricide;
use population_protocols::rand::{SeedSequence, Xoshiro256PlusPlus};
use population_protocols::stats::{chi_square_samples, wilson95};

/// The three round laws plus the uncached reference engine.
#[derive(Clone, Copy, Debug)]
enum Mode {
    Reference,
    Law(LawMode),
}

const MODES: [Mode; 4] = [
    Mode::Reference,
    Mode::Law(LawMode::SequenceExpansion),
    Mode::Law(LawMode::Contingency),
    Mode::Law(LawMode::MultiRound),
];

fn law_config(law: LawMode) -> EngineConfig {
    EngineConfig {
        law_mode: law,
        ..EngineConfig::default()
    }
}

/// A simulation pinned to one mode: the reference tier, or the batch tier
/// forced under one round law.
fn mode_sim<P: LeaderElection>(
    protocol: P,
    n: usize,
    rng: Xoshiro256PlusPlus,
    mode: Mode,
) -> CountSimulation<P, Xoshiro256PlusPlus> {
    match mode {
        Mode::Reference => {
            let mut sim = CountSimulation::new(protocol, n, rng).expect("n >= 2");
            sim.set_compiled_cache(false);
            sim
        }
        Mode::Law(law) => {
            let mut sim =
                CountSimulation::with_config(protocol, n, rng, law_config(law)).expect("n >= 2");
            sim.force_batch_mode();
            sim
        }
    }
}

/// Stabilization parallel times over `seeds` runs on one mode.
fn stabilization_sample<P: LeaderElection + Clone>(
    protocol: &P,
    n: usize,
    seeds: u64,
    salt: u64,
    mode: Mode,
) -> Vec<f64> {
    let seq = SeedSequence::new(salt);
    (0..seeds)
        .map(|seed| {
            let mut sim = mode_sim(protocol.clone(), n, seq.rng_at(seed), mode);
            let out = sim.run_until_single_leader(u64::MAX);
            assert!(out.converged, "{mode:?} seed {seed} did not converge");
            assert_eq!(sim.leader_count(), 1, "{mode:?} seed {seed}");
            out.steps as f64 / n as f64
        })
        .collect()
}

/// Chi-square homogeneity of the modes' stabilization samples, plus a
/// Wilson-interval cross-check of each new law's probability of
/// stabilizing within the reference median budget.
fn assert_law_equivalence<P: LeaderElection + Clone>(
    protocol: P,
    n: usize,
    seeds: u64,
    salt: u64,
    bins: usize,
) {
    let samples: Vec<Vec<f64>> = MODES
        .iter()
        .map(|&mode| stabilization_sample(&protocol, n, seeds, salt, mode))
        .collect();
    let refs: Vec<&[f64]> = samples.iter().map(|s| s.as_slice()).collect();
    let c = chi_square_samples(&refs, bins);
    assert!(
        c.accepts(0.001),
        "round-law histograms diverge: chi2 = {:.2}, df = {}",
        c.statistic,
        c.df
    );

    // Binomial cross-check at a sensitive quantile: P(T <= pooled median of
    // the established modes) must agree for each new law.
    let mut pooled: Vec<f64> = samples[..2].iter().flatten().copied().collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let budget = pooled[pooled.len() / 2];
    let hit = |sample: &[f64]| sample.iter().filter(|&&t| t <= budget).count() as u64;
    let established: u64 = samples[..2].iter().map(|s| hit(s)).sum();
    let (lo, hi) = wilson95(established, 2 * seeds);
    for (sample, law) in samples[2..].iter().zip(["contingency", "multiround"]) {
        let p = hit(sample) as f64 / seeds as f64;
        let slack = 1.96 * (p * (1.0 - p) / seeds as f64).sqrt();
        assert!(
            p + slack >= lo && p - slack <= hi,
            "P(T <= {budget}) {law} = {p:.3} outside Wilson interval [{lo:.3}, {hi:.3}]"
        );
    }
}

#[test]
fn round_laws_agree_on_fratricide() {
    // n = 64 forces rounds of a handful of interactions: the collision
    // path, the exact walk, and the multi-round continuation prefix are all
    // hot, and fratricide's two-state support keeps the contingency cells
    // path engaged (table of <= 4 cells never overflows its cap).
    assert_law_equivalence(Fratricide, 64, 120, 0, 6);
}

#[test]
fn round_laws_agree_on_pll() {
    // The paper's protocol: wide support, so the contingency law exercises
    // its expand-and-shuffle fallback alongside the cells path.
    let n = 128;
    assert_law_equivalence(Pll::for_population(n).expect("n >= 2"), n, 120, 10_000, 6);
}

#[test]
fn round_laws_agree_on_fratricide_batch_regime() {
    // Above the batch population floor, on the auto tier (the production
    // configuration sweeps run): genuine Θ(√n) rounds through the dense
    // phase under each law, the jump scheduler telescoping the null tail.
    let n = 4096;
    let seeds = 60u64;
    let samples: Vec<Vec<f64>> = [
        LawMode::SequenceExpansion,
        LawMode::Contingency,
        LawMode::MultiRound,
    ]
    .iter()
    .map(|&law| {
        let seq = SeedSequence::new(20_000);
        (0..seeds)
            .map(|seed| {
                let mut sim =
                    CountSimulation::with_config(Fratricide, n, seq.rng_at(seed), law_config(law))
                        .expect("n >= 2");
                let out = sim.run_until_single_leader(u64::MAX);
                assert!(out.converged, "{law} seed {seed} did not converge");
                out.steps as f64 / n as f64
            })
            .collect()
    })
    .collect();
    let refs: Vec<&[f64]> = samples.iter().map(|s| s.as_slice()).collect();
    let c = chi_square_samples(&refs, 5);
    assert!(
        c.accepts(0.001),
        "auto-tier law histograms diverge: chi2 = {:.2}, df = {}",
        c.statistic,
        c.df
    );
}

#[test]
fn law_only_wide_matches_scalar_law_at_fixed_budget() {
    // The LawOnly policy shares one run-length inversion and one responder
    // index stream across the lane set; each lane's marginal law must stay
    // exact. Compared at a fixed step budget (3n interactions, all inside
    // lockstep batch rounds — no spill, no tail) through the leader-count
    // distribution, against scalar forced-batch contingency runs.
    let n = 4096usize;
    let budget = 3 * n as u64;
    let lanes = 4usize;
    let bundles = 30usize;
    let seq = SeedSequence::new(31_000);
    let mut wide_counts: Vec<f64> = Vec::new();
    for bundle in 0..bundles {
        let rngs = (0..lanes)
            .map(|lane| seq.rng_at((bundle * lanes + lane) as u64))
            .collect();
        let mut wide = WideSimulation::with_config(
            Fratricide,
            n,
            rngs,
            EngineConfig::default(),
            WideTierPolicy::LawOnly,
        )
        .expect("n >= 2");
        wide.run(budget);
        for pos in 0..lanes {
            assert_eq!(wide.lane_steps(pos), budget);
            let leaders: u64 = wide
                .lane_state_counts(pos)
                .iter()
                .filter(|(s, _)| Fratricide.is_leader(s))
                .map(|(_, c)| *c)
                .sum();
            wide_counts.push(leaders as f64);
        }
    }
    let scalar_counts: Vec<f64> = (0..bundles * lanes)
        .map(|seed| {
            let rng = seq.rng_at(1_000_000 + seed as u64);
            let mut sim = mode_sim(Fratricide, n, rng, Mode::Law(LawMode::Contingency));
            sim.run(budget);
            assert_eq!(sim.steps(), budget);
            sim.leader_count() as f64
        })
        .collect();
    let c = chi_square_samples(&[&scalar_counts, &wide_counts], 5);
    assert!(
        c.accepts(0.001),
        "LawOnly leader-count histogram diverges from scalar: chi2 = {:.2}, df = {}",
        c.statistic,
        c.df
    );
    // The shared machinery must actually have engaged: every round either
    // drew cells (fratricide's 2-state table always fits) or was a walk.
    // (Stats aggregate across the lane set.)
    let mean_wide = wide_counts.iter().sum::<f64>() / wide_counts.len() as f64;
    let mean_scalar = scalar_counts.iter().sum::<f64>() / scalar_counts.len() as f64;
    assert!(
        (mean_wide / mean_scalar - 1.0).abs() < 0.05,
        "mean surviving leaders diverge: wide {mean_wide:.1} vs scalar {mean_scalar:.1}"
    );
}

#[test]
fn multi_round_episodes_chain_segments() {
    // At n = 32 the expected collision-free run is ~3 interactions, so a
    // multi-round episode keeps colliding and chaining: the per-episode
    // segment average must exceed 1 (strictly more segments than episodes)
    // while elections still converge to a unique leader.
    let seq = SeedSequence::new(500);
    let mut episodes = 0;
    let mut segments = 0;
    for seed in 0..20 {
        let mut sim = mode_sim(
            Fratricide,
            32,
            seq.rng_at(seed),
            Mode::Law(LawMode::MultiRound),
        );
        let out = sim.run_until_single_leader(u64::MAX);
        assert!(out.converged);
        assert_eq!(sim.leader_count(), 1);
        let stats = sim.batch_stats();
        assert_eq!(
            stats.bulk_interactions + stats.collision_interactions,
            out.steps
        );
        episodes += stats.episodes;
        segments += stats.episode_segments;
    }
    assert!(episodes > 0, "batch episodes never ran");
    assert!(
        segments > episodes,
        "multi-round never chained: {segments} segments over {episodes} episodes"
    );
}

#[test]
fn contingency_law_skips_shuffles_on_small_support() {
    // Fratricide's two live states keep the per-ordered-pair table at <= 4
    // cells, far under the fallback cap, so the contingency law must be
    // drawing cells (and skipping the responder shuffle) for essentially
    // every non-walk segment.
    let n = 4096;
    let rng = Xoshiro256PlusPlus::seed_from_u64(9);
    let mut sim = mode_sim(Fratricide, n, rng, Mode::Law(LawMode::Contingency));
    sim.run(6 * n as u64);
    let stats = sim.batch_stats();
    assert!(stats.episodes > 0, "no batch episodes at n = {n}");
    assert!(
        stats.shuffle_skips > 0 && stats.contingency_draws > 0,
        "contingency path never engaged: {stats:?}"
    );
    // Nearly every segment skips; the rare exception is a budget-truncated
    // segment whose bulk is smaller than the 4-cell table (the fallback cap
    // compares table size against bulk), which legitimately expands.
    assert!(
        10 * (stats.shuffle_skips + stats.exact_walks) >= 9 * stats.episode_segments,
        "shuffling segments under a 4-cell table: {stats:?}"
    );
}

#[test]
fn snapshots_round_trip_under_every_law_mode() {
    // resume(bytes).snapshot() == bytes for each law mode, from a state
    // with live batch statistics (mid-election, batch forced), and the
    // resumed engine must keep producing the original law's trajectory
    // (bit-identical continuation under the same mode).
    let n = 4096;
    for law in [
        LawMode::SequenceExpansion,
        LawMode::Contingency,
        LawMode::MultiRound,
    ] {
        let rng = Xoshiro256PlusPlus::seed_from_u64(77);
        let mut sim = mode_sim(Fratricide, n, rng, Mode::Law(law));
        sim.run(2 * n as u64);
        let bytes = sim.snapshot();
        let mut resumed = CountSimulation::<_, Xoshiro256PlusPlus>::resume(Fratricide, &bytes)
            .unwrap_or_else(|e| panic!("{law} snapshot failed to resume: {e}"));
        assert_eq!(
            resumed.snapshot(),
            bytes,
            "{law} snapshot is not a fixed point of resume"
        );
        sim.run(n as u64);
        resumed.run(n as u64);
        assert_eq!(
            sim.state_counts(),
            resumed.state_counts(),
            "{law} resumed trajectory diverged"
        );
        assert_eq!(sim.batch_stats(), resumed.batch_stats());
    }
}
